package distrib

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/campaign"
	"repro/internal/telemetry"
)

// Options tune the coordinator's sharding and fault handling. Every
// knob is scheduling-only: results are bit-identical for any
// combination of values, including the node count itself.
type Options struct {
	// Shards is the target number of contiguous segments the
	// (point × replication) grid is cut into. Each segment decomposes
	// into one sub-spec per grid point it touches, and each sub-spec is
	// one remote job. 0 means one shard per node; counts beyond the
	// grid's total run count are clamped.
	Shards int
	// MaxPerNode bounds the shards concurrently in flight against one
	// node — the fan-out's backpressure. 0 means 4.
	MaxPerNode int
	// ShardTimeout is the per-attempt deadline for one shard (submit
	// through completion). A shard stuck on a straggler past the
	// deadline is cancelled on that node and reassigned to the next.
	// 0 means no deadline.
	ShardTimeout time.Duration
	// Attempts is the total number of placement attempts per shard,
	// rotating through the fleet, so a shard survives Attempts-1 node
	// failures. 0 means 3; 1 disables retries.
	Attempts int
	// Backoff is the delay before a shard's first retry; it doubles per
	// subsequent retry up to MaxBackoff. Zero values mean 100ms and 5s.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Jitter is the fraction of each backoff randomized away, in
	// [0, 1]: the actual sleep is uniform in [(1-Jitter)·d, d]. 0
	// keeps the backoff deterministic.
	Jitter float64
	// CleanupTimeout bounds the best-effort remote cleanup RPCs — the
	// cancel of an abandoned job and the reap of a possible orphan.
	// 0 means 5s.
	CleanupTimeout time.Duration
	// HedgeAfter, when positive, arms straggler hedging: a shard still
	// unplaced (or unfinished) after this budget is speculatively
	// re-dispatched on the next eligible node, first completion wins
	// and the loser is cancelled. Spec-hash dedup plus a shared
	// content-addressed store make the duplicate nearly free. 0
	// disables hedging.
	HedgeAfter time.Duration
	// PartialResults switches unrecoverable failures from all-or-
	// nothing to degraded mode: the merge stops at the first shard the
	// fleet cannot deliver, the sinks keep the byte-identical completed
	// prefix, and the run's error is a typed *Incomplete report.
	PartialResults bool
	// BreakerThreshold is the consecutive node-attributable failures
	// that open a node's circuit breaker. 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker blocks a node before
	// allowing a half-open probe attempt. 0 means 2s.
	BreakerCooldown time.Duration
	// HealthInterval, when positive, starts a background prober that
	// polls each node's health endpoint (nodes without one are
	// skipped): probe failures mark the node down and feed its breaker,
	// a node advertising drain stops receiving new shards. 0 disables
	// probing.
	HealthInterval time.Duration
	// Registry receives the coordinator's fault-tolerance metrics
	// (breaker states and transitions, hedge and retry counters). nil
	// means a private registry; a shared registry must not be given to
	// two coordinators (duplicate registration panics).
	Registry *telemetry.Registry
}

func (o Options) withDefaults(nodes int) Options {
	if o.Shards <= 0 {
		o.Shards = nodes
	}
	if o.MaxPerNode <= 0 {
		o.MaxPerNode = 4
	}
	if o.Attempts <= 0 {
		o.Attempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.CleanupTimeout <= 0 {
		o.CleanupTimeout = 5 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	return o
}

// Coordinator fans one campaign out across a fleet of runners — dlsimd
// nodes reached through client.Client, in-process LocalRunners, or a
// mix — and merges the result streams bit-identically to a single-node
// run. It implements campaign.Runner (so a coordinator composes
// anywhere a node does) and campaign.Executor (the synchronous
// fan-out + merge fast path campaign.Execute prefers).
type Coordinator struct {
	nodes  []campaign.Runner
	opts   Options
	sems   []chan struct{} // per-node in-flight shard bound
	brs    []*breaker      // per-node circuit breakers
	states []*nodeState    // per-node health-pool state

	probeCancel context.CancelFunc
	probeWG     sync.WaitGroup
	bg          sync.WaitGroup // hedge losers still cleaning up

	mHedges, mHedgeWins   *telemetry.Counter
	mRetries, mProbeFails *telemetry.Counter
	mTransitions          *telemetry.CounterVec

	mu     sync.Mutex
	jobs   map[string]*job
	byHash map[string]*job // non-terminal jobs, for submit dedup
	nextID int
}

var (
	_ campaign.Runner   = (*Coordinator)(nil)
	_ campaign.Executor = (*Coordinator)(nil)
)

// New returns a coordinator over the given fleet. The node list is
// scheduling-only: any fleet produces bit-identical results for a
// given spec and shard count, and the shard count itself only moves
// the cut points, never the bytes.
func New(nodes []campaign.Runner, opts Options) (*Coordinator, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("distrib: no nodes")
	}
	c := &Coordinator{
		nodes:  nodes,
		opts:   opts.withDefaults(len(nodes)),
		jobs:   make(map[string]*job),
		byHash: make(map[string]*job),
	}
	c.sems = make([]chan struct{}, len(nodes))
	for i := range c.sems {
		c.sems[i] = make(chan struct{}, c.opts.MaxPerNode)
	}

	reg := c.opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c.mHedges = reg.Counter("dlsim_fleet_hedges_total", "Hedged shard submissions launched.")
	c.mHedgeWins = reg.Counter("dlsim_fleet_hedge_wins_total", "Hedged submissions that finished before the primary.")
	c.mRetries = reg.Counter("dlsim_fleet_shard_retries_total", "Shard placement retry attempts.")
	c.mProbeFails = reg.Counter("dlsim_fleet_health_probe_failures_total", "Failed node health probes.")
	c.mTransitions = reg.CounterVec("dlsim_fleet_breaker_transitions_total",
		"Circuit breaker state transitions, by node index and new state.", "node", "to")

	c.brs = make([]*breaker, len(nodes))
	c.states = make([]*nodeState, len(nodes))
	for i := range nodes {
		ni := strconv.Itoa(i)
		c.brs[i] = newBreaker(c.opts.BreakerThreshold, c.opts.BreakerCooldown, func(to breakerState) {
			c.mTransitions.With(ni, to.String()).Inc()
		})
		c.states[i] = &nodeState{healthy: true}
	}
	reg.GaugeSetFunc("dlsim_fleet_breaker_state",
		"Per-node circuit breaker state (0 closed, 1 open, 2 half-open).", []string{"node"},
		func() []telemetry.Sample {
			out := make([]telemetry.Sample, len(c.brs))
			for i, b := range c.brs {
				out[i] = telemetry.Sample{Values: []string{strconv.Itoa(i)}, V: float64(b.current())}
			}
			return out
		})

	if c.opts.HealthInterval > 0 {
		var pctx context.Context
		pctx, c.probeCancel = context.WithCancel(context.Background())
		c.probeWG.Add(1)
		go c.probeLoop(pctx)
	}
	return c, nil
}

// Close stops the coordinator's background machinery — the health
// prober and any hedge losers still cleaning up remote state. It does
// not cancel jobs already submitted.
func (c *Coordinator) Close() error {
	if c.probeCancel != nil {
		c.probeCancel()
	}
	c.probeWG.Wait()
	c.bg.Wait()
	return nil
}

// piece is one remote job of a sharded campaign: a single grid point's
// replication window, carved out of the parent spec. Pieces are
// indexed in the parent's deterministic stream order (point-major,
// then replication), which is exactly the order the merge stage
// forwards them in.
type piece struct {
	index  int // merge order
	point  int // parent grid point index
	repOff int // window start within the point
	reps   int // window length
	spec   campaign.Spec
}

// plan cuts the spec's global run sequence (GridPoints × Replications
// runs, in stream order) into `shards` contiguous segments of
// near-equal size and decomposes each segment into per-point pieces.
// The segment boundaries depend only on (grid, replications, shards),
// so equal inputs always yield the identical plan.
func plan(spec campaign.Spec, shards int) ([]piece, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.RepOffset != 0 {
		// Nothing fundamental forbids re-sharding a shard, but a
		// coordinator is fed whole campaigns; a pre-offset spec here is
		// almost certainly a plumbing mistake.
		return nil, fmt.Errorf("distrib: spec has rep offset %d; submit the parent spec", spec.RepOffset)
	}
	points, r := spec.GridPoints(), spec.Replications
	total := points * r
	if shards > total {
		shards = total
	}
	if shards < 1 {
		shards = 1
	}
	pieces := make([]piece, 0, shards+points)
	base, rem := total/shards, total%shards
	start := 0
	for s := 0; s < shards; s++ {
		size := base
		if s < rem {
			size++
		}
		for a, end := start, start+size; a < end; {
			pt, off := a/r, a%r
			take := r - off
			if take > end-a {
				take = end - a
			}
			sub, err := spec.SubSpec(pt, off, take)
			if err != nil {
				return nil, err
			}
			pieces = append(pieces, piece{index: len(pieces), point: pt, repOff: off, reps: take, spec: sub})
			a += take
		}
		start += size
	}
	return pieces, nil
}

// placement records where a dispatched piece ran.
type placement struct {
	node int
	id   string
}

// acquire takes one in-flight slot on node ni.
func (c *Coordinator) acquire(ctx context.Context, ni int) error {
	select {
	case c.sems[ni] <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Coordinator) backoff(retry int) time.Duration {
	d := c.opts.Backoff
	for i := 0; i < retry && d < c.opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.opts.MaxBackoff {
		d = c.opts.MaxBackoff
	}
	if j := c.opts.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		d = time.Duration(float64(d) * (1 - j*rand.Float64()))
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryAfterHint extracts the server's Retry-After backoff from a
// rate-limited error chain. The hint travels as a method rather than a
// concrete type so this package never imports the HTTP client.
func retryAfterHint(err error) time.Duration {
	var h interface{ RetryAfterHint() time.Duration }
	if errors.As(err, &h) {
		return h.RetryAfterHint()
	}
	return 0
}

// dispatch places one piece on the fleet: submit + wait to completion
// on a node, retrying with exponential backoff across the remaining
// nodes on transient failure or a blown ShardTimeout. startNode seeds
// the rotation so the initial wave spreads round-robin.
//
// A rate-limited rejection (campaign.ErrRateLimited) does not rotate:
// the limit is per tenant, so the next node would refuse the shard just
// the same, and hopping only spreads the rejection storm across the
// fleet. The shard backs off on the spot — honoring the server's
// Retry-After when it exceeds the policy backoff — and retries the same
// node.
func (c *Coordinator) dispatch(ctx context.Context, p piece, startNode int) (placement, error) {
	var last error
	rot := 0 // rotation offset; frozen while rate-limited
	for a := 0; a < c.opts.Attempts; a++ {
		if a > 0 {
			c.mRetries.Inc()
			d := c.backoff(a - 1)
			if hint := retryAfterHint(last); hint > d {
				d = hint
			}
			if err := sleepCtx(ctx, d); err != nil {
				break
			}
		}
		ni, ok := c.pick(startNode + rot)
		if !ok {
			// Every node is drained, down, or breaker-blocked right now.
			// That is a transient fleet condition, not a verdict on the
			// shard: burn the attempt and back off, so a cooldown expiry
			// or a recovering probe can reopen a path.
			last = fmt.Errorf("distrib: shard %d: no eligible node (fleet draining, down, or breaker-open)", p.index)
			if ctx.Err() != nil {
				break
			}
			continue
		}
		if err := c.acquire(ctx, ni); err != nil {
			c.brs[ni].release()
			break
		}
		pl, err := c.attempt(ctx, ni, p)
		<-c.sems[ni]
		if err == nil {
			c.brs[ni].success()
			return pl, nil
		}
		c.states[ni].note(err)
		// Only node-attributable failures feed the breaker: a cancelled
		// context, a per-tenant rate limit, or a job that ran to a
		// deterministic terminal failure says nothing about node health.
		var term *errJobTerminal
		switch {
		case ctx.Err() != nil, errors.Is(err, campaign.ErrRateLimited), errors.As(err, &term):
			c.brs[ni].release()
		default:
			c.brs[ni].failure()
		}
		if !errors.Is(err, campaign.ErrRateLimited) {
			rot++
		}
		last = fmt.Errorf("distrib: shard %d (point %d, reps [%d,%d)) on node %d: %w",
			p.index, p.point, p.repOff, p.repOff+p.reps, ni, err)
		if ctx.Err() != nil {
			break
		}
	}
	if last == nil {
		last = fmt.Errorf("distrib: shard %d: %w", p.index, ctx.Err())
	}
	return placement{}, last
}

// place is dispatch plus straggler hedging. When HedgeAfter elapses
// with the primary dispatch still in flight, the shard is speculatively
// re-dispatched starting from the next node; the first completion wins
// and the loser's context is cancelled (its dispatcher reaps the
// remote job on the way out). Hash dedup and the shared store make the
// duplicate nearly free; either way the shard's bytes are fixed by the
// spec, so hedging is scheduling-only.
func (c *Coordinator) place(ctx context.Context, p piece, startNode int) (placement, error) {
	if c.opts.HedgeAfter <= 0 {
		return c.dispatch(ctx, p, startNode)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type res struct {
		pl    placement
		err   error
		hedge bool
	}
	ch := make(chan res, 2) // buffered: losers never block on send
	launch := func(start int, hedge bool) {
		c.bg.Add(1)
		go func() {
			defer c.bg.Done()
			pl, err := c.dispatch(hctx, p, start)
			ch <- res{pl, err, hedge}
		}()
	}
	launch(startNode, false)
	launched, finished := 1, 0
	t := time.NewTimer(c.opts.HedgeAfter)
	defer t.Stop()
	var firstErr error
	for {
		select {
		case <-t.C:
			if launched == 1 && ctx.Err() == nil {
				c.mHedges.Inc()
				launch(startNode+1, true)
				launched = 2
			}
		case r := <-ch:
			finished++
			if r.err == nil {
				if r.hedge {
					c.mHedgeWins.Inc()
				}
				return r.pl, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if finished == launched {
				return placement{}, firstErr
			}
		}
	}
}

// attempt runs one piece on one node under the per-shard deadline. A
// failed or expired wait reaps the remote job (best effort, bounded,
// and only when this coordinator owns it — a deduped submission joined
// a job someone else is also watching), so a straggler shard never
// keeps burning a node after reassignment.
func (c *Coordinator) attempt(ctx context.Context, ni int, p piece) (placement, error) {
	actx := ctx
	if c.opts.ShardTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.opts.ShardTimeout)
		defer cancel()
	}
	node := c.nodes[ni]
	jb, err := node.Submit(actx, p.spec)
	if err != nil {
		if actx.Err() != nil {
			// The attempt died mid-submit: the response is lost, but the
			// server may have created the job anyway. Re-submitting with a
			// bounded, non-cancelled context joins any such orphan through
			// the hash dedup and yields an ID to cancel; if no orphan
			// exists, the probe job is cancelled before it runs.
			c.reap(ctx, node, p.spec)
		}
		return placement{}, err
	}
	snap, err := node.Wait(actx, jb.ID)
	if err != nil {
		if !jb.Deduped {
			cctx, ccancel := context.WithTimeout(context.WithoutCancel(ctx), c.opts.CleanupTimeout)
			_ = node.Cancel(cctx, jb.ID)
			ccancel()
		}
		return placement{}, err
	}
	if snap.State != campaign.StateDone {
		return placement{}, &errJobTerminal{fmt.Errorf("job %s ended %s: %s", jb.ID, snap.State, snap.Error)}
	}
	return placement{node: ni, id: jb.ID}, nil
}

// errJobTerminal marks a job that the node executed to a terminal
// non-done state — the node did its work; the failure belongs to the
// campaign, so it must not feed the node's circuit breaker.
type errJobTerminal struct{ err error }

func (e *errJobTerminal) Error() string { return e.err.Error() }
func (e *errJobTerminal) Unwrap() error { return e.err }

// reap cancels a possibly orphaned shard job on a node, addressing it
// by spec hash via submit dedup. Best effort and bounded; used only
// when an aborted submission may have left a job behind.
func (c *Coordinator) reap(ctx context.Context, node campaign.Runner, spec campaign.Spec) {
	rctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), c.opts.CleanupTimeout)
	defer cancel()
	jb, err := node.Submit(rctx, spec)
	if err != nil {
		return
	}
	_ = node.Cancel(rctx, jb.ID)
}

// remapSink rewrites one piece's shard-local event coordinates
// (point 0, rep r) back to the parent grid's (point, repOff+r) and
// forwards to the merge sinks. Close is a no-op: the runner's Stream
// closes its sinks per call, but the merge sinks span every piece and
// are closed once by the coordinator. next makes re-streaming after a
// mid-stream node failure idempotent: rows a broken stream already
// delivered are skipped, so the sinks observe every row exactly once.
type remapSink struct {
	point, repOff int
	next          int // shard-local rep of the next undelivered row
	sinks         []campaign.Sink
}

func (r *remapSink) Consume(ctx context.Context, ev campaign.Event) error {
	if ev.Rep < r.next {
		return nil
	}
	local := ev.Rep
	ev.Point = r.point
	ev.Rep += r.repOff
	for _, s := range r.sinks {
		if err := s.Consume(ctx, ev); err != nil {
			return err
		}
	}
	r.next = local + 1
	return nil
}

func (r *remapSink) Close() error { return nil }

// streamPiece delivers one completed piece's events, remapped to
// parent coordinates, to the merge sinks. If the stream breaks and the
// caller's context is still alive — the node died after finishing the
// shard — the piece is re-dispatched on the rest of the fleet and the
// remainder streamed from there; with a shared content-addressed store
// the re-execution is a cache replay costing zero backend runs.
func (c *Coordinator) streamPiece(ctx context.Context, p piece, pl placement, sinks []campaign.Sink) error {
	rs := &remapSink{point: p.point, repOff: p.repOff, sinks: sinks}
	err := c.nodes[pl.node].Stream(ctx, pl.id, rs)
	if err == nil || ctx.Err() != nil {
		return err
	}
	pl2, err2 := c.dispatch(ctx, p, pl.node+1)
	if err2 != nil {
		return fmt.Errorf("distrib: re-fetch shard %d after stream failure (%v): %w", p.index, err, err2)
	}
	return c.nodes[pl2.node].Stream(ctx, pl2.id, rs)
}

// run fans the spec out and merges the shard streams into sinks (which
// it does not close) in the parent's deterministic order. progress, if
// non-nil, observes completed run counts as shards finish.
func (c *Coordinator) run(ctx context.Context, spec campaign.Spec, sinks []campaign.Sink, progress func(int64)) error {
	pieces, err := plan(spec, c.opts.Shards)
	if err != nil {
		return err
	}
	fctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	defer wg.Wait() // leak-free: runs after cancel, so dispatchers drain
	defer cancel()
	pls := make([]placement, len(pieces))
	errs := make([]error, len(pieces))
	done := make([]chan struct{}, len(pieces))
	for i := range pieces {
		done[i] = make(chan struct{})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer close(done[i])
			pls[i], errs[i] = c.place(fctx, pieces[i], pieces[i].index)
			if errs[i] == nil && progress != nil {
				progress(int64(pieces[i].reps))
			}
		}(i)
	}
	// Merge in plan order: piece i streams as soon as it and every
	// earlier piece have completed, while later pieces keep executing —
	// the merge is a rolling frontier, not a barrier.
	//
	// In degraded mode (PartialResults) an unrecoverable shard stops the
	// frontier instead of discarding it: everything merged so far is the
	// byte-identical completed prefix, and the error returned is a typed
	// *Incomplete report built before the remaining dispatchers are
	// cancelled, so their causes are captured where already known.
	for i := range pieces {
		select {
		case <-done[i]:
		case <-fctx.Done():
			return fctx.Err()
		}
		if errs[i] != nil {
			if c.opts.PartialResults && ctx.Err() == nil {
				hash, _ := spec.Hash()
				return error(c.incomplete(hash, pieces, i, errs, done, nil))
			}
			return errs[i]
		}
		if err := c.streamPiece(fctx, pieces[i], pls[i], sinks); err != nil {
			if c.opts.PartialResults && ctx.Err() == nil {
				hash, _ := spec.Hash()
				return error(c.incomplete(hash, pieces, i, errs, done, err))
			}
			return err
		}
	}
	return nil
}

// Execute implements campaign.Executor: synchronous fan-out + ordered
// merge. The aggregation reuses engine.Aggregator over the parent
// spec, so the returned Result is the same fold, over the same metrics,
// in the same order as a local execution — bit-identical aggregates.
func (c *Coordinator) Execute(ctx context.Context, spec campaign.Spec, opts campaign.ExecOptions) (*campaign.Result, error) {
	agg, err := spec.NewAggregator(opts.KeepPerRun)
	if err != nil {
		return nil, campaign.CloseSinks(err, opts.Sinks...)
	}
	sinks := append([]campaign.Sink{agg}, opts.Sinks...)
	runErr := c.run(ctx, spec, sinks, nil)
	var inc *Incomplete
	if errors.As(runErr, &inc) {
		// Degraded mode: flush the caller's sinks so the completed
		// prefix they hold survives, but skip the aggregator — its
		// Close validates completeness, and an incomplete campaign has
		// no validated Result. The *Incomplete travels as the error.
		_ = campaign.CloseSinks(nil, opts.Sinks...)
		return nil, runErr
	}
	if err := campaign.CloseSinks(runErr, sinks...); err != nil {
		return nil, err
	}
	return agg.Result(), nil
}

// job is one asynchronously submitted campaign's coordinator-side
// state.
type job struct {
	spec   campaign.Spec
	pieces []piece
	pls    []placement // placements, valid where the piece succeeded

	completed atomic.Int64

	cancel context.CancelFunc
	done   chan struct{} // closed on terminal state

	mu          sync.Mutex
	state       campaign.State
	err         error
	submissions int
}

func (j *job) snapshot(id, hash string) campaign.Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := campaign.Snapshot{
		ID:          id,
		Hash:        hash,
		State:       j.state,
		Total:       int64(j.spec.GridPoints() * j.spec.Replications),
		Completed:   j.completed.Load(),
		Submissions: j.submissions,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// Submit implements campaign.Runner: it plans the shards and launches
// the fan-out in the background. Submissions deduplicate on the spec
// hash exactly like a node's queue: a spec matching a live job joins
// it.
func (c *Coordinator) Submit(ctx context.Context, spec campaign.Spec) (campaign.Job, error) {
	pieces, err := plan(spec, c.opts.Shards)
	if err != nil {
		return campaign.Job{}, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return campaign.Job{}, err
	}
	c.mu.Lock()
	if j, ok := c.byHash[hash]; ok {
		j.mu.Lock()
		j.submissions++
		j.mu.Unlock()
		var id string
		for jid, cand := range c.jobs {
			if cand == j {
				id = jid
				break
			}
		}
		c.mu.Unlock()
		return campaign.Job{ID: id, Hash: hash, Deduped: true}, nil
	}
	c.nextID++
	id := "d" + strconv.Itoa(c.nextID)
	jctx, cancel := context.WithCancel(context.Background())
	j := &job{
		spec:        spec,
		pieces:      pieces,
		pls:         make([]placement, len(pieces)),
		cancel:      cancel,
		done:        make(chan struct{}),
		state:       campaign.StateRunning,
		submissions: 1,
	}
	c.jobs[id] = j
	c.byHash[hash] = j
	c.mu.Unlock()
	go c.runJob(jctx, j, hash)
	return campaign.Job{ID: id, Hash: hash}, nil
}

// runJob executes a submitted job's fan-out: every piece is dispatched
// (with the usual retry/reassignment), but nothing is streamed — the
// results stay on the nodes, content-addressed, until a Stream call
// merges them on demand.
func (c *Coordinator) runJob(jctx context.Context, j *job, hash string) {
	var wg sync.WaitGroup
	var failed atomic.Pointer[error]
	for i := range j.pieces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pl, err := c.place(jctx, j.pieces[i], j.pieces[i].index)
			if err != nil {
				failed.CompareAndSwap(nil, &err)
				j.cancel()
				return
			}
			j.pls[i] = pl
			j.completed.Add(int64(j.pieces[i].reps))
		}(i)
	}
	wg.Wait()
	j.mu.Lock()
	switch {
	case jctx.Err() != nil && failed.Load() == nil:
		j.state = campaign.StateCancelled
		j.err = fmt.Errorf("distrib: cancelled")
	case failed.Load() != nil:
		j.state = campaign.StateFailed
		j.err = *failed.Load()
	default:
		j.state = campaign.StateDone
	}
	j.mu.Unlock()
	c.mu.Lock()
	if c.byHash[hash] == j {
		delete(c.byHash, hash)
	}
	c.mu.Unlock()
	j.cancel() // release the context either way
	close(j.done)
}

func (c *Coordinator) get(id string) (*job, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, fmt.Errorf("distrib: job %q: %w", id, campaign.ErrNotFound)
	}
	return j, nil
}

// Wait implements campaign.Runner.
func (c *Coordinator) Wait(ctx context.Context, id string) (campaign.Snapshot, error) {
	j, err := c.get(id)
	if err != nil {
		return campaign.Snapshot{}, err
	}
	hash, _ := j.spec.Hash()
	select {
	case <-j.done:
		return j.snapshot(id, hash), nil
	case <-ctx.Done():
		return campaign.Snapshot{}, ctx.Err()
	}
}

// Stream implements campaign.Runner: it waits for the fan-out to
// complete, then merges the shard result streams from the nodes in the
// parent's deterministic order. The nodes serve the streams from their
// content-addressed results, so streaming (even repeatedly, by several
// consumers) costs zero backend runs.
func (c *Coordinator) Stream(ctx context.Context, id string, sinks ...campaign.Sink) error {
	return campaign.CloseSinks(c.stream(ctx, id, sinks), sinks...)
}

func (c *Coordinator) stream(ctx context.Context, id string, sinks []campaign.Sink) error {
	j, err := c.get(id)
	if err != nil {
		return err
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	j.mu.Lock()
	state, jerr := j.state, j.err
	j.mu.Unlock()
	if state != campaign.StateDone {
		return fmt.Errorf("distrib: job %s is %s: %w", id, state, jerr)
	}
	for i := range j.pieces {
		if err := c.streamPiece(ctx, j.pieces[i], j.pls[i], sinks); err != nil {
			return err
		}
	}
	return nil
}

// Cancel implements campaign.Runner. Cancelling a running job aborts
// every in-flight shard on the nodes (each dispatcher reaps its remote
// job on the way out); a terminal job is left untouched.
func (c *Coordinator) Cancel(ctx context.Context, id string) error {
	j, err := c.get(id)
	if err != nil {
		return err
	}
	j.cancel()
	return nil
}

// Describe implements campaign.Runner: the fleet's capabilities are
// the first reachable node's, under the coordinator's own service
// name.
func (c *Coordinator) Describe(ctx context.Context) (campaign.Description, error) {
	var last error
	for _, node := range c.nodes {
		d, err := node.Describe(ctx)
		if err == nil {
			d.Service = "distrib"
			d.Execution = nil
			return d, nil
		}
		last = err
	}
	return campaign.Description{}, fmt.Errorf("distrib: no node reachable: %w", last)
}
