package distrib

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/campaign"
	"repro/client"
	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/service"
	"repro/internal/testutil"
)

// Gated backends, one per test that needs to hold runs in flight.
var (
	gateKill   = testutil.NewGateBackend("distrib-gate-kill")
	gateWarm   = testutil.NewGateBackend("distrib-gate-warm")
	gateCancel = testutil.NewGateBackend("distrib-gate-cancel")
	gateAsync  = testutil.NewGateBackend("distrib-gate-async")
)

func init() {
	engine.Register(gateKill)
	engine.Register(gateWarm)
	engine.Register(gateCancel)
	engine.Register(gateAsync)
}

// node is one in-process dlsimd: a jobs manager behind the real /v1
// HTTP stack, reached through the real SDK — the full wire path.
type node struct {
	mgr *jobs.Manager
	srv *httptest.Server
	cli *client.Client
}

// kill simulates the process dying: in-flight requests are severed and
// the node's work is torn down.
func (n *node) kill() {
	n.srv.CloseClientConnections()
	n.srv.Close()
	n.mgr.Close()
}

// newFleet boots n nodes sharing one content-addressed store.
func newFleet(t *testing.T, n int, store cache.Store) ([]campaign.Runner, []*node) {
	t.Helper()
	runners := make([]campaign.Runner, n)
	fleet := make([]*node, n)
	for i := 0; i < n; i++ {
		mgr := jobs.NewManager(jobs.Config{Store: store})
		srv := httptest.NewServer(service.New(mgr).Handler())
		t.Cleanup(func() { srv.Close(); mgr.Close() })
		cli, err := client.New(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		fleet[i] = &node{mgr: mgr, srv: srv, cli: cli}
		runners[i] = cli
	}
	return runners, fleet
}

func goldenSpec(policy string, reps int) campaign.Spec {
	return campaign.Spec{
		Techniques:   []string{"FAC2", "GSS"},
		Ns:           []int64{128, 256},
		Ps:           []int{4},
		Workload:     campaign.Workload{Kind: "exponential", P1: 1},
		H:            0.5,
		Replications: reps,
		Seed:         20170808,
		SeedPolicy:   policy,
	}
}

// localReference runs the spec in-process and returns its JSONL bytes
// and aggregates — the bit pattern every distributed merge must
// reproduce.
func localReference(t *testing.T, spec campaign.Spec) ([]byte, *campaign.Result) {
	t.Helper()
	var buf bytes.Buffer
	res, err := campaign.Execute(context.Background(), campaign.NewLocal(campaign.LocalConfig{}), spec,
		campaign.ExecOptions{KeepPerRun: true, Sinks: []campaign.Sink{campaign.NewJSONLSink(&buf)}})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestDistributedMergeGolden is the tentpole's acceptance test: across
// shard counts {1, 2, 3, 7} and all four seed policies — with 5
// replications, so 2, 3 and 7 all split unevenly — the merged JSONL
// stream is byte-identical to a single-process run and the aggregates
// are deeply equal.
func TestDistributedMergeGolden(t *testing.T) {
	store := cache.NewMemory()
	nodes, _ := newFleet(t, 3, store)
	for _, policy := range []string{campaign.SeedPerCell, campaign.SeedFlat, campaign.SeedFacade, campaign.SeedShared} {
		spec := goldenSpec(policy, 5)
		wantJSONL, wantRes := localReference(t, spec)
		for _, shards := range []int{1, 2, 3, 7} {
			coord, err := New(nodes, Options{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			res, err := campaign.Execute(context.Background(), coord, spec,
				campaign.ExecOptions{KeepPerRun: true, Sinks: []campaign.Sink{campaign.NewJSONLSink(&buf)}})
			if err != nil {
				t.Fatalf("%s/%d shards: %v", policy, shards, err)
			}
			if !bytes.Equal(buf.Bytes(), wantJSONL) {
				t.Errorf("%s/%d shards: merged JSONL differs from single-node run", policy, shards)
			}
			if !reflect.DeepEqual(res, wantRes) {
				t.Errorf("%s/%d shards: aggregates differ from single-node run", policy, shards)
			}
		}
	}
}

// TestSinglePointSpecGolden covers the degenerate grid: one point, all
// sharding happens along the replication axis, and shard counts beyond
// the run count clamp instead of failing.
func TestSinglePointSpecGolden(t *testing.T) {
	spec := goldenSpec(campaign.SeedPerCell, 5)
	spec.Techniques = []string{"FAC2"}
	spec.Ns = []int64{128}
	wantJSONL, wantRes := localReference(t, spec)
	nodes, _ := newFleet(t, 2, cache.NewMemory())
	for _, shards := range []int{1, 3, 7, 100} { // 7 and 100 exceed the 5 total runs
		coord, err := New(nodes, Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res, err := campaign.Execute(context.Background(), coord, spec,
			campaign.ExecOptions{KeepPerRun: true, Sinks: []campaign.Sink{campaign.NewJSONLSink(&buf)}})
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if !bytes.Equal(buf.Bytes(), wantJSONL) {
			t.Errorf("%d shards: merged JSONL differs", shards)
		}
		if !reflect.DeepEqual(res, wantRes) {
			t.Errorf("%d shards: aggregates differ", shards)
		}
	}
}

// TestPlanPathologicalSplits pins the planner's cut points: full
// coverage in global stream order, near-equal segment sizes, and
// correct decomposition when segments straddle point boundaries.
func TestPlanPathologicalSplits(t *testing.T) {
	check := func(t *testing.T, spec campaign.Spec, shards int) []piece {
		t.Helper()
		pieces, err := plan(spec, shards)
		if err != nil {
			t.Fatal(err)
		}
		next, pt := 0, 0
		var covered int
		for i, p := range pieces {
			if p.index != i {
				t.Fatalf("piece %d carries index %d", i, p.index)
			}
			if p.point < pt || (p.point == pt && p.repOff != next) || (p.point > pt && p.repOff != 0) {
				t.Fatalf("piece %d (point %d, off %d) breaks global order (cursor point %d, rep %d)", i, p.point, p.repOff, pt, next)
			}
			pt, next = p.point, p.repOff+p.reps
			if next == spec.Replications {
				pt, next = pt+1, 0
			}
			if p.spec.RepOffset != p.repOff || p.spec.Replications != p.reps {
				t.Fatalf("piece %d sub-spec window (%d, %d) disagrees with plan (%d, %d)",
					i, p.spec.RepOffset, p.spec.Replications, p.repOff, p.reps)
			}
			covered += p.reps
		}
		if total := spec.GridPoints() * spec.Replications; covered != total {
			t.Fatalf("plan covers %d runs of %d", covered, total)
		}
		return pieces
	}

	spec := goldenSpec(campaign.SeedPerCell, 5) // 4 points × 5 reps = 20 runs
	for _, shards := range []int{1, 2, 3, 7, 19, 20, 500} {
		check(t, spec, shards)
	}
	if pieces := check(t, spec, 500); len(pieces) != 20 {
		t.Errorf("oversharded plan has %d pieces, want 20 single-run pieces", len(pieces))
	}
	// A 7-way cut of 20 runs: segments 3,3,3,3,3,3,2 — every boundary
	// lands mid-point, so segments decompose into multiple pieces.
	if pieces := check(t, spec, 7); len(pieces) <= 7 {
		t.Errorf("7-way mid-point cut produced only %d pieces", len(pieces))
	}

	single := spec
	single.Techniques = []string{"FAC2"}
	single.Ns = []int64{128}
	for _, shards := range []int{1, 3, 5, 9} {
		check(t, single, shards)
	}

	if _, err := plan(campaign.Spec{}, 2); err == nil {
		t.Error("plan accepted an invalid spec")
	}
	offset := spec
	offset.RepOffset = 2
	if _, err := plan(offset, 2); err == nil {
		t.Error("plan accepted an already-offset spec")
	}
}

// TestNodeFailureReassignment kills one node while its shards are held
// mid-run; the coordinator must reassign them to the survivors and
// still produce the bit-identical merged result.
func TestNodeFailureReassignment(t *testing.T) {
	spec := goldenSpec(campaign.SeedPerCell, 5)
	spec.Backend = gateKill.Name()
	wantJSONL := func() []byte {
		gateKill.Release()
		defer gateKill.Reset()
		b, _ := localReference(t, spec)
		return b
	}()

	store := cache.NewMemory()
	nodes, fleet := newFleet(t, 3, store)
	coord, err := New(nodes, Options{Shards: 3, Attempts: 4, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Jitter: 0.5})
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		jsonl []byte
		err   error
	}
	res := make(chan outcome, 1)
	go func() {
		var buf bytes.Buffer
		_, err := campaign.Execute(context.Background(), coord, spec,
			campaign.ExecOptions{Sinks: []campaign.Sink{campaign.NewJSONLSink(&buf)}})
		res <- outcome{buf.Bytes(), err}
	}()

	// Wait until shards are actually executing, then kill node 0 with
	// its work still gated — its shards can only finish elsewhere.
	deadline := time.Now().Add(5 * time.Second)
	for gateKill.Started.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no run entered the gate")
		}
		time.Sleep(time.Millisecond)
	}
	fleet[0].kill()
	gateKill.Release()

	out := <-res
	if out.err != nil {
		t.Fatalf("campaign failed despite reassignment: %v", out.err)
	}
	if !bytes.Equal(out.jsonl, wantJSONL) {
		t.Error("merged JSONL after node failure differs from single-node run")
	}
}

// TestWarmStoreResubmit: with the fleet sharing a content-addressed
// store, re-executing the same spec re-submits every shard but costs
// zero backend runs — shard idempotency via the sub-spec hash.
func TestWarmStoreResubmit(t *testing.T) {
	gateWarm.Release()
	spec := goldenSpec(campaign.SeedFlat, 5)
	spec.Backend = gateWarm.Name()
	store := cache.NewMemory()
	nodes, _ := newFleet(t, 3, store)
	coord, err := New(nodes, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	var cold bytes.Buffer
	if _, err := campaign.Execute(context.Background(), coord, spec,
		campaign.ExecOptions{Sinks: []campaign.Sink{campaign.NewJSONLSink(&cold)}}); err != nil {
		t.Fatal(err)
	}
	ranCold := gateWarm.Runs.Load()
	if ranCold == 0 {
		t.Fatal("cold execution performed no backend runs")
	}

	var warm bytes.Buffer
	if _, err := campaign.Execute(context.Background(), coord, spec,
		campaign.ExecOptions{Sinks: []campaign.Sink{campaign.NewJSONLSink(&warm)}}); err != nil {
		t.Fatal(err)
	}
	if ranWarm := gateWarm.Runs.Load() - ranCold; ranWarm != 0 {
		t.Errorf("warm resubmission performed %d backend runs, want 0", ranWarm)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Error("warm replay bytes differ from cold execution")
	}
}

// TestCancelDrainsRemoteJobs cancels mid-fan-out with every run gated:
// the coordinator must return promptly, reap its remote jobs (no shard
// left running on any node) and leak no goroutines.
func TestCancelDrainsRemoteJobs(t *testing.T) {
	check := testutil.CheckGoroutines(t)
	spec := goldenSpec(campaign.SeedPerCell, 5)
	spec.Backend = gateCancel.Name()
	store := cache.NewMemory()
	nodes := make([]campaign.Runner, 0, 3)
	fleet := make([]*node, 0, 3)
	for i := 0; i < 3; i++ {
		mgr := jobs.NewManager(jobs.Config{Store: store})
		srv := httptest.NewServer(service.New(mgr).Handler())
		cli, err := client.New(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, cli)
		fleet = append(fleet, &node{mgr: mgr, srv: srv, cli: cli})
	}
	coord, err := New(nodes, Options{Shards: 7})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() {
		_, err := campaign.Execute(ctx, coord, spec, campaign.ExecOptions{})
		res <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for gateCancel.Started.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no run entered the gate")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-res:
		if err == nil {
			t.Fatal("cancelled execution reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled execution did not return")
	}

	// Every remote job must reach a terminal state: the dispatchers
	// cancel their shards on the way out, and the gated runs observe
	// the job context dying.
	for ni, n := range fleet {
		for _, snap := range n.mgr.List() {
			j, err := n.mgr.Get(snap.ID)
			if err != nil {
				t.Fatal(err)
			}
			select {
			case <-j.Done():
			case <-time.After(5 * time.Second):
				t.Fatalf("node %d job %s still live after cancellation (state %s)", ni, snap.ID, j.Snapshot().State)
			}
		}
	}
	for _, n := range fleet {
		n.srv.Close()
		n.mgr.Close()
	}
	gateCancel.Release() // hygiene; nothing should be waiting
	check()
}

// TestCoordinatorRunnerSurface exercises the asynchronous Runner face:
// submit dedup on the spec hash, Wait snapshots, on-demand Stream
// (twice, zero extra backend runs), Cancel of unknown IDs, Describe.
func TestCoordinatorRunnerSurface(t *testing.T) {
	spec := goldenSpec(campaign.SeedFacade, 5)
	spec.Backend = gateAsync.Name()
	store := cache.NewMemory()
	nodes, _ := newFleet(t, 2, store)
	coord, err := New(nodes, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	jb1, err := coord.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	jb2, err := coord.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !jb2.Deduped || jb2.ID != jb1.ID || jb2.Hash != jb1.Hash {
		t.Fatalf("concurrent resubmission not deduped: %+v vs %+v", jb1, jb2)
	}
	gateAsync.Release()

	snap, err := coord.Wait(ctx, jb1.ID)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(spec.GridPoints() * spec.Replications)
	if snap.State != campaign.StateDone || snap.Total != total || snap.Completed != total || snap.Submissions != 2 {
		t.Fatalf("final snapshot %+v, want done %d/%d with 2 submissions", snap, total, total)
	}

	wantJSONL, _ := localReference(t, spec)
	ranBefore := gateAsync.Runs.Load()
	for i := 0; i < 2; i++ {
		var buf bytes.Buffer
		if err := coord.Stream(ctx, jb1.ID, campaign.NewJSONLSink(&buf)); err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		if !bytes.Equal(buf.Bytes(), wantJSONL) {
			t.Errorf("stream %d bytes differ from single-node run", i)
		}
	}
	if extra := gateAsync.Runs.Load() - ranBefore; extra != 0 {
		t.Errorf("streaming a done job performed %d backend runs, want 0", extra)
	}

	if err := coord.Cancel(ctx, "nope"); !errors.Is(err, campaign.ErrNotFound) {
		t.Errorf("Cancel(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := coord.Wait(ctx, "nope"); !errors.Is(err, campaign.ErrNotFound) {
		t.Errorf("Wait(unknown) = %v, want ErrNotFound", err)
	}
	d, err := coord.Describe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d.Service != "distrib" || d.APIVersion != campaign.APIVersion || len(d.Techniques) == 0 {
		t.Errorf("Describe = %+v", d)
	}
	if !strings.Contains(strings.Join(d.SeedPolicies, ","), campaign.SeedFacade) {
		t.Errorf("Describe seed policies %v missing %s", d.SeedPolicies, campaign.SeedFacade)
	}
}

// rlErr mimics the SDK's rate-limited error: it unwraps to
// campaign.ErrRateLimited and carries a Retry-After hint through the
// RetryAfterHint method the dispatcher discovers via errors.As.
type rlErr struct{ after time.Duration }

func (e rlErr) Error() string                 { return "rate limited (injected)" }
func (e rlErr) Unwrap() error                 { return campaign.ErrRateLimited }
func (e rlErr) RetryAfterHint() time.Duration { return e.after }

// limitedNode wraps a real node's runner, rejecting the first
// `rejections` submissions as rate-limited.
type limitedNode struct {
	campaign.Runner
	rejections atomic.Int64 // remaining injected rejections
	submits    atomic.Int64
}

func (n *limitedNode) Submit(ctx context.Context, spec campaign.Spec) (campaign.Job, error) {
	n.submits.Add(1)
	if n.rejections.Add(-1) >= 0 {
		return campaign.Job{}, rlErr{after: 5 * time.Millisecond}
	}
	return n.Runner.Submit(ctx, spec)
}

// TestRateLimitedShardStaysOnNode: a rate-limited rejection must back
// off and retry the SAME node — the limit is per tenant, so rotating
// would just spread the rejection across the fleet — and the campaign
// still completes bit-identically once the bucket refills.
func TestRateLimitedShardStaysOnNode(t *testing.T) {
	// Single grid point + one shard = exactly one piece, dispatched from
	// node 0 — so any submission reaching node 1 is a rotation.
	spec := goldenSpec(campaign.SeedPerCell, 3)
	spec.Techniques = []string{"FAC2"}
	spec.Ns = []int64{128}
	wantJSONL, _ := localReference(t, spec)

	store := cache.NewMemory()
	runners, _ := newFleet(t, 2, store)
	n0 := &limitedNode{Runner: runners[0]}
	n0.rejections.Store(2)
	n1 := &limitedNode{Runner: runners[1]}
	coord, err := New([]campaign.Runner{n0, n1},
		Options{Shards: 1, Attempts: 5, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	var buf bytes.Buffer
	if _, err := campaign.Execute(context.Background(), coord, spec,
		campaign.ExecOptions{Sinks: []campaign.Sink{campaign.NewJSONLSink(&buf)}}); err != nil {
		t.Fatalf("campaign failed across rate limiting: %v", err)
	}
	// 2 rejections + 1 success, all on node 0; node 1 untouched.
	if n1.submits.Load() != 0 {
		t.Fatalf("rate-limited shard rotated to node 1 (%d submits there)", n1.submits.Load())
	}
	if got := n0.submits.Load(); got < 3 {
		t.Fatalf("node 0 saw %d submits, want ≥ 3 (2 rejections + success)", got)
	}
	// The Retry-After hint (5ms) floors both backoff sleeps over the
	// 1-2ms policy.
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("campaign finished in %v, want ≥ 10ms (two floored backoffs)", elapsed)
	}
	if !bytes.Equal(buf.Bytes(), wantJSONL) {
		t.Error("merged JSONL after rate limiting differs from local reference")
	}
}
