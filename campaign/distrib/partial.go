// Degraded-mode results: when the fleet cannot finish a campaign and
// Options.PartialResults is on, the coordinator stops at the first
// unrecoverable shard and reports exactly what is missing instead of
// discarding the prefix it already merged.

package distrib

import (
	"fmt"
	"strings"
)

// ShardRange identifies one undelivered contiguous window of the
// campaign's run grid — shard granularity, in plan order.
type ShardRange struct {
	// Shard is the piece index in plan (= merge) order.
	Shard int `json:"shard"`
	// Point is the parent grid point the window belongs to.
	Point int `json:"point"`
	// RepOff and Reps delimit the replication window [RepOff,
	// RepOff+Reps) within the point.
	RepOff int `json:"rep_off"`
	Reps   int `json:"reps"`
	// Cause is the shard's own failure, or the reason it was abandoned.
	Cause string `json:"cause,omitempty"`
}

// NodeFailure is one node's condition at the time the campaign gave
// up — the per-node half of the degraded-mode report.
type NodeFailure struct {
	// Node is the index into the coordinator's fleet.
	Node int `json:"node"`
	// Breaker is the circuit state: "closed", "open" or "half-open".
	Breaker string `json:"breaker"`
	// Draining reports the node advertised drain (or unreadiness) via
	// its health endpoint.
	Draining bool `json:"draining,omitempty"`
	// Healthy is the prober's current liveness verdict (true when
	// probing is off).
	Healthy bool `json:"healthy"`
	// Cause is the node's most recent recorded failure, if any.
	Cause string `json:"cause,omitempty"`
}

// Incomplete is the typed error a partial-results run terminates with:
// the sinks hold the byte-identical completed prefix of the campaign
// (every fully merged shard, in plan order — exactly the bytes a
// healthy run would have produced first), and this report enumerates
// what is missing and why. Retrieve it from the returned error chain
// with errors.As.
//
// A shard that failed mid-stream may additionally have contributed a
// correct but incomplete tail beyond CompletedRuns; such a shard is
// still listed as missing, with a cause saying so.
type Incomplete struct {
	// Hash is the campaign spec's canonical hash.
	Hash string `json:"hash"`
	// CompletedRuns counts runs delivered by fully merged shards;
	// TotalRuns is the campaign's full grid size.
	CompletedRuns int64 `json:"completed_runs"`
	TotalRuns     int64 `json:"total_runs"`
	// Missing lists every undelivered shard window, in plan order.
	Missing []ShardRange `json:"missing"`
	// Nodes describes the fleet's condition at give-up time.
	Nodes []NodeFailure `json:"nodes"`
}

// Error implements error.
func (e *Incomplete) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "distrib: incomplete campaign %s: %d/%d runs completed, %d shard(s) missing",
		shortHash(e.Hash), e.CompletedRuns, e.TotalRuns, len(e.Missing))
	if len(e.Missing) > 0 && e.Missing[0].Cause != "" {
		fmt.Fprintf(&b, " (first: %s)", e.Missing[0].Cause)
	}
	return b.String()
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// incomplete assembles the degraded-mode report: pieces before
// `failedAt` were fully merged; `failedAt` and everything after are
// missing. Dispatch goroutines may still be landing when this runs, so
// per-piece causes are read only through their done channels.
func (c *Coordinator) incomplete(hash string, pieces []piece, failedAt int, errs []error, done []chan struct{}, streamErr error) *Incomplete {
	inc := &Incomplete{Hash: hash}
	for i, p := range pieces {
		if i < failedAt {
			inc.CompletedRuns += int64(p.reps)
		}
		inc.TotalRuns += int64(p.reps)
		if i < failedAt {
			continue
		}
		sr := ShardRange{Shard: p.index, Point: p.point, RepOff: p.repOff, Reps: p.reps}
		switch {
		case i == failedAt && streamErr != nil:
			sr.Cause = fmt.Sprintf("stream failed mid-shard: %v", streamErr)
		default:
			select {
			case <-done[i]:
				if errs[i] != nil {
					sr.Cause = errs[i].Error()
				}
			default:
				sr.Cause = fmt.Sprintf("abandoned after shard %d failed", failedAt)
			}
		}
		inc.Missing = append(inc.Missing, sr)
	}
	for ni := range c.nodes {
		st := c.states[ni]
		st.mu.Lock()
		nf := NodeFailure{
			Node:     ni,
			Breaker:  c.brs[ni].current().String(),
			Draining: st.draining,
			Healthy:  st.healthy,
			Cause:    st.lastErr,
		}
		st.mu.Unlock()
		inc.Nodes = append(inc.Nodes, nf)
	}
	return inc
}
