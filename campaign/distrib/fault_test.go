package distrib

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/campaign"
	"repro/client"
	"repro/internal/cache"
	"repro/internal/chaos"
)

// chaosFleet boots n in-process dlsimd nodes whose SDK clients route
// every request through a chaos.Injector armed with the given rules —
// the Doer-level harness, no proxy processes needed. All engines share
// one base seed, offset per node, so a failing run replays exactly.
func chaosFleet(t *testing.T, n int, store cache.Store, rules [][]chaos.Rule) ([]campaign.Runner, []*chaos.Engine) {
	t.Helper()
	_, fleet := newFleet(t, n, store)
	runners := make([]campaign.Runner, n)
	engines := make([]*chaos.Engine, n)
	for i, node := range fleet {
		eng, err := chaos.NewEngine(uint64(1000+i), rules[i]...)
		if err != nil {
			t.Fatal(err)
		}
		cli, err := client.New(node.srv.URL,
			client.WithDoer(&chaos.Injector{Next: node.srv.Client(), Engine: eng}))
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
		runners[i] = cli
	}
	return runners, engines
}

// TestChaosGoldenByteIdentical is the fault-tolerance acceptance test:
// a 3-node fleet under injected connection resets, stream truncation,
// stream corruption and added latency — with PartialResults off — must
// still produce JSONL and aggregates byte-identical to a single-node
// run. Every fault knob is scheduling-only; the chaos harness proves
// it.
func TestChaosGoldenByteIdentical(t *testing.T) {
	spec := goldenSpec(campaign.SeedPerCell, 5)
	wantJSONL, wantRes := localReference(t, spec)

	// FirstN-only fatal faults: deterministic placement and a
	// guaranteed-finite fault budget, so the retry policy always
	// converges. Node 1 owns the stream damage (truncate, then corrupt):
	// a broken merge stream retries on exactly one other node, so
	// damaging streams on two nodes could make both the stream and its
	// one retry fail.
	rules := [][]chaos.Rule{
		{ // node 0: first two submissions die with ECONNRESET
			{Name: "reset-submit", Method: "POST", Path: "/v1/jobs", Fault: chaos.FaultReset, FirstN: 2},
		},
		{ // node 1: first result stream truncated, second corrupted
			{Name: "trunc-results", Path: "/results", Fault: chaos.FaultTruncate, FirstN: 1, After: 200},
			{Name: "corrupt-results", Path: "/results", Fault: chaos.FaultCorrupt, FirstN: 1, After: 64},
		},
		{ // node 2: one reset plus sluggish status polls
			{Name: "reset-submit", Method: "POST", Path: "/v1/jobs", Fault: chaos.FaultReset, FirstN: 1},
			{Name: "slow-wait", Method: "GET", Path: "/v1/jobs", Fault: chaos.FaultLatency, FirstN: 3,
				Latency: chaos.Duration(5 * time.Millisecond)},
		},
	}
	nodes, engines := chaosFleet(t, 3, cache.NewMemory(), rules)
	coord, err := New(nodes, Options{
		Shards: 7, Attempts: 5,
		Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
		BreakerThreshold: 10, // faults are finite; keep the golden test about bytes
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	var buf bytes.Buffer
	res, err := campaign.Execute(context.Background(), coord, spec,
		campaign.ExecOptions{KeepPerRun: true, Sinks: []campaign.Sink{campaign.NewJSONLSink(&buf)}})
	if err != nil {
		t.Fatalf("campaign failed under chaos: %v", err)
	}
	var injected int64
	for _, eng := range engines {
		injected += eng.Injected()
	}
	if injected == 0 {
		t.Fatal("chaos profile never fired; the test proved nothing")
	}
	if !bytes.Equal(buf.Bytes(), wantJSONL) {
		t.Errorf("merged JSONL under chaos differs from single-node run (after %d injected faults)", injected)
	}
	if !reflect.DeepEqual(res, wantRes) {
		t.Errorf("aggregates under chaos differ from single-node run")
	}
}

// TestBreakerTransitions pins the state machine with an injected
// clock: closed → open at threshold, blocked during cooldown, a single
// half-open probe after it, probe failure re-opens, probe success
// closes.
func TestBreakerTransitions(t *testing.T) {
	now := time.Unix(0, 0)
	var transitions []string
	b := newBreaker(3, time.Minute, func(to breakerState) {
		transitions = append(transitions, to.String())
	})
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.failure()
	}
	if got := b.current(); got != breakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	b.failure() // third consecutive: trip
	if got := b.current(); got != breakerOpen {
		t.Fatalf("state after threshold = %v, want open", got)
	}
	if b.allow() {
		t.Fatal("open breaker admitted traffic inside cooldown")
	}

	now = now.Add(2 * time.Minute) // cooldown expired
	if !b.allow() {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if got := b.current(); got != breakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.release() // probe abandoned without a verdict: slot frees, state holds
	if got := b.current(); got != breakerHalfOpen {
		t.Fatalf("state after release = %v, want half-open", got)
	}
	if !b.allow() {
		t.Fatal("released probe slot not reusable")
	}
	b.failure() // probe failed: re-open immediately
	if got := b.current(); got != breakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}

	now = now.Add(2 * time.Minute)
	if !b.allow() {
		t.Fatal("second cooldown expiry refused the probe")
	}
	b.success()
	if got := b.current(); got != breakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if !b.allow() {
		t.Fatal("closed breaker refused traffic")
	}

	want := []string{"open", "half-open", "open", "half-open", "closed"}
	if fmt.Sprint(transitions) != fmt.Sprint(want) {
		t.Errorf("transition sequence %v, want %v", transitions, want)
	}
}

// TestBreakerRace hammers one breaker from many goroutines — the
// concurrent shard traffic shape — and checks invariants under -race:
// no deadlock, and at most one goroutine ever holds the half-open
// probe slot.
func TestBreakerRace(t *testing.T) {
	b := newBreaker(3, time.Microsecond, nil)
	var probes atomic.Int64 // concurrently held half-open probe slots
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				pre := b.current()
				if !b.allow() {
					continue
				}
				if pre != breakerClosed {
					// We may hold the single probe slot; count holders.
					if n := probes.Add(1); n > 1 {
						t.Errorf("%d concurrent half-open probes", n)
					}
					probes.Add(-1)
				}
				switch (g + i) % 3 {
				case 0:
					b.success()
				case 1:
					b.failure()
				default:
					b.release()
				}
			}
		}(g)
	}
	wg.Wait()
	b.success()
	if !b.allow() {
		t.Fatal("breaker wedged after concurrent traffic")
	}
}

// vetoNode refuses every offset sub-spec — a node that can only ever
// complete a campaign's first shard, the deterministic way to strand a
// suffix.
type vetoNode struct {
	campaign.Runner
}

func (n *vetoNode) Submit(ctx context.Context, spec campaign.Spec) (campaign.Job, error) {
	if spec.RepOffset > 0 {
		return campaign.Job{}, errors.New("injected: node refuses offset shards")
	}
	return n.Runner.Submit(ctx, spec)
}

// TestPartialResultsPrefix drives a fleet into unrecoverable failure
// with PartialResults on: the run must end in a typed *Incomplete that
// names the missing shard window and the fleet's condition, while the
// sinks hold the byte-identical completed prefix.
func TestPartialResultsPrefix(t *testing.T) {
	spec := goldenSpec(campaign.SeedPerCell, 10)
	spec.Techniques = []string{"FAC2"}
	spec.Ns = []int64{128} // one grid point: shards split along replications
	wantJSONL, _ := localReference(t, spec)
	prefix := firstLines(t, wantJSONL, 5)

	runners, _ := newFleet(t, 2, cache.NewMemory())
	nodes := []campaign.Runner{&vetoNode{runners[0]}, &vetoNode{runners[1]}}
	coord, err := New(nodes, Options{
		Shards: 2, Attempts: 2, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
		PartialResults: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	var buf bytes.Buffer
	res, err := campaign.Execute(context.Background(), coord, spec,
		campaign.ExecOptions{Sinks: []campaign.Sink{campaign.NewJSONLSink(&buf)}})
	if err == nil || res != nil {
		t.Fatalf("degraded run returned (%v, %v), want typed error and nil result", res, err)
	}
	var inc *Incomplete
	if !errors.As(err, &inc) {
		t.Fatalf("error %v does not carry *Incomplete", err)
	}
	if inc.CompletedRuns != 5 || inc.TotalRuns != 10 {
		t.Errorf("completed %d/%d runs, want 5/10", inc.CompletedRuns, inc.TotalRuns)
	}
	if len(inc.Missing) != 1 {
		t.Fatalf("missing = %+v, want exactly the second shard", inc.Missing)
	}
	m := inc.Missing[0]
	if m.Shard != 1 || m.Point != 0 || m.RepOff != 5 || m.Reps != 5 {
		t.Errorf("missing window %+v, want shard 1, point 0, reps [5,10)", m)
	}
	if !contains(m.Cause, "injected") {
		t.Errorf("missing cause %q does not name the failure", m.Cause)
	}
	if len(inc.Nodes) != 2 {
		t.Fatalf("node report %+v, want both nodes", inc.Nodes)
	}
	for _, nf := range inc.Nodes {
		if nf.Breaker == "" || !nf.Healthy {
			t.Errorf("node %d report %+v, want a breaker state and probe-less healthy=true", nf.Node, nf)
		}
	}
	if !bytes.Equal(buf.Bytes(), prefix) {
		t.Errorf("sink holds %d bytes, want the byte-identical 5-run prefix (%d bytes)", buf.Len(), len(prefix))
	}
}

// slowNode blocks every submission until its context dies — a straggler
// that never finishes, the shape hedging exists for.
type slowNode struct {
	campaign.Runner
	submits atomic.Int64
}

func (n *slowNode) Submit(ctx context.Context, spec campaign.Spec) (campaign.Job, error) {
	n.submits.Add(1)
	<-ctx.Done()
	return campaign.Job{}, ctx.Err()
}

// TestHedgedShardWins points a campaign's only shard at a node that
// never answers: after HedgeAfter the coordinator must speculatively
// re-dispatch on the second node, take its result, cancel the
// straggler, and count both the hedge and its win.
func TestHedgedShardWins(t *testing.T) {
	spec := goldenSpec(campaign.SeedPerCell, 3)
	spec.Techniques = []string{"FAC2"}
	spec.Ns = []int64{128}
	wantJSONL, _ := localReference(t, spec)

	runners, _ := newFleet(t, 2, cache.NewMemory())
	nodes := []campaign.Runner{&slowNode{Runner: runners[0]}, runners[1]}
	coord, err := New(nodes, Options{
		Shards: 1, HedgeAfter: 10 * time.Millisecond,
		CleanupTimeout: 20 * time.Millisecond, // the straggler blocks cleanup RPCs too
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := campaign.Execute(context.Background(), coord, spec,
		campaign.ExecOptions{Sinks: []campaign.Sink{campaign.NewJSONLSink(&buf)}}); err != nil {
		t.Fatalf("hedged campaign failed: %v", err)
	}
	if err := coord.Close(); err != nil { // waits out the cancelled straggler's cleanup
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), wantJSONL) {
		t.Error("hedged result differs from single-node run")
	}
	if got := coord.mHedges.Value(); got != 1 {
		t.Errorf("hedges counter = %d, want 1", got)
	}
	if got := coord.mHedgeWins.Value(); got != 1 {
		t.Errorf("hedge wins counter = %d, want 1", got)
	}
	if nodes[0].(*slowNode).submits.Load() == 0 {
		t.Error("straggler node never saw the primary dispatch")
	}
}

// healthNode gives a real node a controllable GET /v1/health surface
// and counts the submissions that reach it.
type healthNode struct {
	campaign.Runner
	submits atomic.Int64
	health  func() (campaign.Health, error)
}

func (n *healthNode) Submit(ctx context.Context, spec campaign.Spec) (campaign.Job, error) {
	n.submits.Add(1)
	return n.Runner.Submit(ctx, spec)
}

func (n *healthNode) Health(context.Context) (campaign.Health, error) { return n.health() }

// TestHealthPoolRoutesAroundDrain starts the background prober against
// a two-node fleet where one node advertises drain: the pool must stop
// placing shards there, and the campaign completes bit-identically on
// the survivor.
func TestHealthPoolRoutesAroundDrain(t *testing.T) {
	spec := goldenSpec(campaign.SeedPerCell, 5)
	wantJSONL, _ := localReference(t, spec)

	runners, _ := newFleet(t, 2, cache.NewMemory())
	draining := &healthNode{Runner: runners[0], health: func() (campaign.Health, error) {
		return campaign.Health{Ok: true, Ready: false, Draining: true}, nil
	}}
	healthy := &healthNode{Runner: runners[1], health: func() (campaign.Health, error) {
		return campaign.Health{Ok: true, Ready: true}, nil
	}}
	coord, err := New([]campaign.Runner{draining, healthy},
		Options{Shards: 4, HealthInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	waitFor(t, "prober to observe the drain", func() bool {
		return !coord.states[0].available()
	})
	var buf bytes.Buffer
	if _, err := campaign.Execute(context.Background(), coord, spec,
		campaign.ExecOptions{Sinks: []campaign.Sink{campaign.NewJSONLSink(&buf)}}); err != nil {
		t.Fatalf("campaign failed on the surviving node: %v", err)
	}
	if got := draining.submits.Load(); got != 0 {
		t.Errorf("draining node received %d submissions, want 0", got)
	}
	if !bytes.Equal(buf.Bytes(), wantJSONL) {
		t.Error("single-survivor result differs from reference")
	}
}

// TestHealthProbeOpensDeadNodeBreaker: a node whose health endpoint
// errors must be marked down and its breaker opened by probes alone —
// no shard traffic required — with the failures visible on the probe
// and transition counters.
func TestHealthProbeOpensDeadNodeBreaker(t *testing.T) {
	runners, _ := newFleet(t, 1, cache.NewMemory())
	dead := &healthNode{Runner: runners[0], health: func() (campaign.Health, error) {
		return campaign.Health{}, errors.New("connection refused (injected)")
	}}
	coord, err := New([]campaign.Runner{dead},
		Options{HealthInterval: 2 * time.Millisecond, BreakerThreshold: 3, BreakerCooldown: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	waitFor(t, "probe failures to open the breaker", func() bool {
		return coord.brs[0].current() == breakerOpen
	})
	if coord.states[0].available() {
		t.Error("dead node still marked available")
	}
	if got := coord.mProbeFails.Value(); got < 3 {
		t.Errorf("probe failure counter = %d, want >= threshold", got)
	}
	if got := coord.mTransitions.With("0", "open").Value(); got < 1 {
		t.Errorf("breaker open-transition counter = %d, want >= 1", got)
	}
	if _, ok := coord.pick(0); ok {
		t.Error("pick placed a shard on the only (dead, breaker-open) node")
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func firstLines(t *testing.T, b []byte, n int) []byte {
	t.Helper()
	off := 0
	for i := 0; i < n; i++ {
		j := bytes.IndexByte(b[off:], '\n')
		if j < 0 {
			t.Fatalf("reference stream has fewer than %d lines", n)
		}
		off += j + 1
	}
	return b[:off]
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
