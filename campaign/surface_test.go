package campaign_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/campaign"
)

// TestAPISurfaceSnapshot pins the public shape of the campaign
// package's core types. Several of them are aliases promoting
// internal/engine and internal/jobs types into the public API, so a
// field rename, removal or type change in those internal packages — or
// a drift in the Runner interface itself — silently breaks external
// consumers and the /v1 wire contract. This test turns such drift into
// a build-red diff: if a change here is intentional, it is an API
// change and the snapshot (plus API.md) must be updated with it.
func TestAPISurfaceSnapshot(t *testing.T) {
	snap := map[string]string{
		"Spec": "Backend string json=backend,omitempty; Techniques []string json=techniques; " +
			"Ns []int64 json=ns; Ps []int json=ps; Workload workload.Spec json=workload; " +
			"H float64 json=h,omitempty; HInDynamics bool json=h_in_dynamics,omitempty; " +
			"PerMessageCost float64 json=per_message_cost,omitempty; " +
			"Speeds []float64 json=speeds,omitempty; StartTimes []float64 json=start_times,omitempty; " +
			"MinChunk int64 json=min_chunk,omitempty; Chunk int64 json=chunk,omitempty; " +
			"First int64 json=first,omitempty; Last int64 json=last,omitempty; " +
			"Alpha float64 json=alpha,omitempty; Weights []float64 json=weights,omitempty; " +
			"Replications int json=replications; Seed uint64 json=seed; " +
			"SeedPolicy string json=seed_policy,omitempty; RepOffset int json=rep_offset,omitempty",
		"Workload": "Kind string json=kind; P1 float64 json=p1,omitempty; P2 float64 json=p2,omitempty; " +
			"P3 float64 json=p3,omitempty; N int64 json=n,omitempty",
		"RunMetrics": "Wasted float64 json=wasted; Makespan float64 json=makespan; " +
			"Speedup float64 json=speedup; SchedOps int64 json=sched_ops",
		"Event": "Point int; Rep int; Spec engine.RunSpec; Metrics engine.RunMetrics; Result *engine.RunResult",
		"MetricsPartial": "Point int; RepLo int; Runs []engine.RunMetrics; " +
			"Wasted metrics.Accumulator; Makespan metrics.Accumulator; Speedup metrics.Accumulator; Ops int64",
		"Aggregate": "Spec engine.RunSpec; Wasted metrics.Summary; Makespan metrics.Summary; " +
			"Speedup metrics.Summary; MeanOps float64; PerRun []engine.RunMetrics; Results []*engine.RunResult",
		"Result": "Aggregates []engine.Aggregate; Overall metrics.Accumulator",
		"Snapshot": "ID string json=id; Hash string json=hash; Tenant string json=tenant,omitempty; " +
			"State jobs.State json=state; " +
			"Total int64 json=total; Completed int64 json=completed; Submissions int json=submissions; " +
			"RepOffset int json=rep_offset,omitempty; " +
			"Error string json=error,omitempty; CreatedAt time.Time json=created_at; " +
			"StartedAt *time.Time json=started_at,omitempty; FinishedAt *time.Time json=finished_at,omitempty",
		"Job": "ID string json=id; Hash string json=hash; Deduped bool json=deduped",
		"Description": "Service string json=service; APIVersion string json=api_version; " +
			"Techniques []string json=techniques; Backends []string json=backends; " +
			"SeedPolicies []string json=seed_policies; " +
			"Execution *campaign.Execution json=execution,omitempty",
		"Execution": "CPUs int json=cpus; Workers int json=workers; " +
			"ChunkSize int json=chunk_size; Concurrency int json=concurrency",
		"ErrorBody": "Code string json=code; Message string json=message; " +
			"Details map[string]interface {} json=details,omitempty",
		"ErrorEnvelope": "Error campaign.ErrorBody json=error",
		"Health": "Ok bool json=ok; Ready bool json=ready; Draining bool json=draining,omitempty; " +
			"QueueDepth int json=queue_depth; Running int json=running; " +
			"Journal string json=journal,omitempty; Auth bool json=auth; " +
			"Service string json=service,omitempty",
	}
	types := map[string]reflect.Type{
		"Spec":           reflect.TypeOf(campaign.Spec{}),
		"Workload":       reflect.TypeOf(campaign.Workload{}),
		"RunMetrics":     reflect.TypeOf(campaign.RunMetrics{}),
		"Event":          reflect.TypeOf(campaign.Event{}),
		"MetricsPartial": reflect.TypeOf(campaign.MetricsPartial{}),
		"Aggregate":      reflect.TypeOf(campaign.Aggregate{}),
		"Result":         reflect.TypeOf(campaign.Result{}),
		"Snapshot":       reflect.TypeOf(campaign.Snapshot{}),
		"Job":            reflect.TypeOf(campaign.Job{}),
		"Description":    reflect.TypeOf(campaign.Description{}),
		"Execution":      reflect.TypeOf(campaign.Execution{}),
		"ErrorBody":      reflect.TypeOf(campaign.ErrorBody{}),
		"ErrorEnvelope":  reflect.TypeOf(campaign.ErrorEnvelope{}),
		"Health":         reflect.TypeOf(campaign.Health{}),
	}
	for name, typ := range types {
		want, ok := snap[name]
		if !ok {
			t.Errorf("no snapshot for %s", name)
			continue
		}
		if got := structShape(typ); got != want {
			t.Errorf("campaign.%s drifted from the API snapshot:\n got: %s\nwant: %s", name, got, want)
		}
	}

	// The Runner contract itself.
	wantMethods := []string{
		"Cancel(context.Context, string) error",
		"Describe(context.Context) (campaign.Description, error)",
		"Stream(context.Context, string, ...engine.Sink) error",
		"Submit(context.Context, engine.CampaignSpec) (campaign.Job, error)",
		"Wait(context.Context, string) (jobs.Snapshot, error)",
	}
	rt := reflect.TypeOf((*campaign.Runner)(nil)).Elem()
	var got []string
	for i := 0; i < rt.NumMethod(); i++ {
		m := rt.Method(i)
		got = append(got, m.Name+strings.TrimPrefix(m.Type.String(), "func"))
	}
	if strings.Join(got, "; ") != strings.Join(wantMethods, "; ") {
		t.Errorf("Runner interface drifted:\n got: %s\nwant: %s",
			strings.Join(got, "; "), strings.Join(wantMethods, "; "))
	}

	// The stable error codes are a wire contract; renaming one breaks
	// deployed clients.
	codes := map[string]string{
		campaign.CodeInvalidArgument: "invalid_argument",
		campaign.CodeInvalidSpec:     "invalid_spec",
		campaign.CodeNotFound:        "not_found",
		campaign.CodeQueueFull:       "queue_full",
		campaign.CodeShuttingDown:    "shutting_down",
		campaign.CodeNotDone:         "job_not_done",
		campaign.CodeJobFailed:       "job_failed",
		campaign.CodeJobCancelled:    "job_cancelled",
		campaign.CodeNotAcceptable:   "not_acceptable",
		campaign.CodeInternal:        "internal",
		campaign.CodeUnauthorized:    "unauthorized",
		campaign.CodeRateLimited:     "rate_limited",
		campaign.CodeQuotaExceeded:   "quota_exceeded",
	}
	for got, want := range codes {
		if got != want {
			t.Errorf("error code drifted: %q, want %q", got, want)
		}
	}
	if campaign.APIVersion != "v1" {
		t.Errorf("APIVersion = %q, want v1", campaign.APIVersion)
	}
}

// The Aggregator must stay chunk-granular: losing ConsumePartial would
// silently disable the engine's aggregate fast path for every campaign
// that attaches one.
var _ campaign.PartialSink = (*campaign.Aggregator)(nil)

// structShape renders a struct type's exported surface: field names,
// types and JSON tags in declaration order.
func structShape(t reflect.Type) string {
	parts := make([]string, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		s := fmt.Sprintf("%s %s", f.Name, f.Type)
		if tag, ok := f.Tag.Lookup("json"); ok {
			s += " json=" + tag
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, "; ")
}
