package campaign

// Health is the readiness document one execution surface serves at
// GET /v1/health and the fleet coordinator's node pool consumes. It
// answers the operational question a load balancer or coordinator asks
// before placing work: is this node alive, is it accepting, and how
// loaded is it.
//
// Liveness and readiness are distinct: /healthz answers "is the
// process up" and stays 200 for the daemon's whole life, while
// /v1/health reports Ready=false (and HTTP 503) the moment the node
// starts draining — running jobs still finish and their results remain
// streamable, but new submissions are refused with shutting_down.
type Health struct {
	// Ok is the liveness bit: the process is up and serving. Always
	// true in a served document; it exists so a decoded zero value is
	// distinguishable from a real answer.
	Ok bool `json:"ok"`
	// Ready reports whether the node accepts new submissions. False
	// while draining.
	Ready bool `json:"ready"`
	// Draining is set once shutdown has begun: the queue refuses new
	// work while running jobs finish.
	Draining bool `json:"draining,omitempty"`
	// QueueDepth is the number of jobs waiting to run.
	QueueDepth int `json:"queue_depth"`
	// Running is the number of jobs currently executing.
	Running int `json:"running"`
	// Journal reports the durable journal's state: "" (disabled),
	// "ok", or "degraded" (an append failed since startup — durability
	// is reduced, availability is not).
	Journal string `json:"journal,omitempty"`
	// Auth reports whether multi-tenant API-key auth is enabled.
	Auth bool `json:"auth"`
	// Service identifies the implementation serving the document.
	Service string `json:"service,omitempty"`
}
