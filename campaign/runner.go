package campaign

import (
	"context"
	"fmt"
)

// Job is the handle a Runner returns for a submitted campaign.
type Job struct {
	// ID addresses the job in Wait, Stream and Cancel calls.
	ID string `json:"id"`
	// Hash is the campaign spec's canonical content address; identical
	// specs share it, and runners deduplicate concurrent submissions on
	// it.
	Hash string `json:"hash"`
	// Deduped reports that this submission joined an already queued or
	// running job with the same hash instead of enqueuing a new
	// execution.
	Deduped bool `json:"deduped"`
}

// Runner is the one execution interface of the system: everything that
// can run a campaign — the in-process engine (LocalRunner) or a dlsimd
// daemon reached over HTTP (client.Client) — implements it, so callers
// choose where a campaign executes without changing how they execute
// it. Results are bit-identical across implementations for a given
// spec.
type Runner interface {
	// Submit validates the spec and enqueues it, returning a job handle.
	// Submitting a spec whose hash matches a queued or running job joins
	// that job (Deduped true) instead of executing twice. A runner at
	// queue capacity fails with an error matching ErrQueueFull; a
	// shut-down runner with ErrClosed.
	Submit(ctx context.Context, spec Spec) (Job, error)

	// Wait blocks until the job reaches a terminal state (done, failed
	// or cancelled) or ctx is cancelled, and returns its final snapshot.
	Wait(ctx context.Context, id string) (Snapshot, error)

	// Stream waits for the job to complete and delivers its per-run
	// events to the sinks in deterministic (point, replication) order —
	// the identical byte stream every consumer of this job observes.
	// Every sink is closed exactly once, on success and error alike. A
	// failed or cancelled job is an error.
	Stream(ctx context.Context, id string, sinks ...Sink) error

	// Cancel aborts a queued or running job. Cancelling a terminal job
	// is a no-op; an unknown ID fails with an error matching
	// ErrNotFound. Running jobs reach StateCancelled asynchronously —
	// Wait for the terminal state.
	Cancel(ctx context.Context, id string) error

	// Describe reports the runner's capabilities: accepted techniques,
	// backends and seed policies.
	Describe(ctx context.Context) (Description, error)
}

// ExecOptions carries the execution parameters of a one-shot Execute
// call — everything that may change how results arrive but never what
// they are.
type ExecOptions struct {
	// KeepPerRun retains the per-run metrics in each Aggregate.
	KeepPerRun bool
	// Sinks additionally observe the ordered per-run event stream.
	Sinks []Sink
}

// Executor is the optional synchronous fast path of a Runner. The
// LocalRunner implements it by calling straight into the engine,
// skipping the submit/wait/stream round trip; Execute uses it when
// available.
type Executor interface {
	Execute(ctx context.Context, spec Spec, opts ExecOptions) (*Result, error)
}

// CloseSinks closes every sink exactly once, preserving first (or the
// first close error when first is nil) — the shared tail of the Sink
// contract every Runner implementation must honor on success and error
// paths alike.
func CloseSinks(first error, sinks ...Sink) error {
	for _, s := range sinks {
		if err := s.Close(); err != nil && first == nil {
			first = fmt.Errorf("campaign: sink close: %w", err)
		}
	}
	return first
}

// Execute runs one campaign through the runner from submission to
// aggregated result. On a plain Runner it submits, waits, and feeds the
// streamed events through an Aggregator — a deterministic fold, so the
// returned aggregates are bit-identical to the ones a local execution
// computes. Runners implementing Executor (LocalRunner) short-circuit
// to their in-process path. Sinks in opts observe the event stream
// either way and are closed exactly once on every path.
func Execute(ctx context.Context, r Runner, spec Spec, opts ExecOptions) (*Result, error) {
	if d, ok := r.(Executor); ok {
		return d.Execute(ctx, spec, opts)
	}
	agg, err := spec.NewAggregator(opts.KeepPerRun)
	if err != nil {
		return nil, CloseSinks(err, opts.Sinks...)
	}
	job, err := r.Submit(ctx, spec)
	if err != nil {
		return nil, CloseSinks(err, opts.Sinks...)
	}
	// Stream waits for completion itself, surfaces failed/cancelled
	// terminal states as errors, and closes every sink (including the
	// aggregator, whose Close validates the stream was complete).
	if err := r.Stream(ctx, job.ID, append([]Sink{agg}, opts.Sinks...)...); err != nil {
		return nil, err
	}
	return agg.Result(), nil
}

// Run is Execute with default options: Run(ctx, r, spec, sinks...)
// executes the campaign and returns its aggregates while the sinks
// observe the per-run stream.
func Run(ctx context.Context, r Runner, spec Spec, sinks ...Sink) (*Result, error) {
	return Execute(ctx, r, spec, ExecOptions{Sinks: sinks})
}
