// Integration tests pinning the paper's findings: each test asserts the
// qualitative result ("shape") of one evaluation artifact, per the
// experiment index in DESIGN.md §4.
package repro_test

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/refdata"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestFigure5Shape runs a reduced Figure 5 grid and checks the relative
// discrepancy against the pinned reference stays within the paper's
// bound for that figure (15% at 1024 tasks) — the reproducibility
// criterion of §IV-B1.
func TestFigure5Shape(t *testing.T) {
	spec := experiment.HagerupGrid(benchSeed)
	spec.Ns = []int64{1024}
	spec.Runs = 200
	res, err := experiment.RunHagerup(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range spec.Techniques {
		for _, p := range spec.Ps {
			c, err := res.Cell(tech, 1024, p)
			if err != nil {
				t.Fatal(err)
			}
			ref, ok := refdata.Wasted(tech, 1024, p)
			if !ok {
				t.Fatalf("missing reference %s/%d", tech, p)
			}
			rel := metrics.RelativeDiscrepancy(c.Wasted.Mean, ref)
			if math.Abs(rel) > 15 {
				t.Errorf("%s p=%d: relative discrepancy %.1f%% exceeds the paper's 15%% bound (sim %.3g vs ref %.3g)",
					tech, p, rel, c.Wasted.Mean, ref)
			}
		}
	}
}

// TestHagerupOrdering pins the per-cell ordering facts the paper's
// figures exhibit at 8192 tasks: SS worst at small p (overhead-bound),
// BOLD/FAC/FAC2 in the leading group, and everything converging at
// p = n/8 scale.
func TestHagerupOrdering(t *testing.T) {
	spec := experiment.HagerupGrid(benchSeed + 1)
	spec.Ns = []int64{8192}
	spec.Runs = 100
	res, err := experiment.RunHagerup(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	get := func(tech string, p int) float64 {
		c, err := res.Cell(tech, 8192, p)
		if err != nil {
			t.Fatal(err)
		}
		return c.Wasted.Mean
	}
	for _, p := range []int{2, 8, 64} {
		ss := get("SS", p)
		for _, tech := range []string{"FAC", "FAC2", "BOLD", "GSS", "TSS", "FSC"} {
			if v := get(tech, p); v >= ss {
				t.Errorf("p=%d: %s wasted %.3g >= SS %.3g", p, tech, v, ss)
			}
		}
		if bold, stat := get("BOLD", p), get("STAT", p); bold >= stat {
			t.Errorf("p=%d: BOLD %.3g >= STAT %.3g", p, bold, stat)
		}
	}
	// Convergence at p=1024 (each PE gets ~8 tasks): all techniques
	// within a factor 4 band except SS's residual overhead.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, tech := range []string{"STAT", "FSC", "GSS", "TSS", "FAC", "FAC2", "BOLD"} {
		v := get(tech, 1024)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi > 4*lo {
		t.Errorf("p=1024 cluster too wide: [%.3g, %.3g]", lo, hi)
	}
}

// TestFigure9OutlierAnalysis reproduces §IV-B4's finding: FAC with 2 PEs
// and 524288 tasks has rare extreme runs; excluding runs above 400 s
// drops the mean substantially toward the paper's 25.82 s scale.
func TestFigure9OutlierAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("long: 300 runs of a 524288-task simulation")
	}
	spec := experiment.HagerupGrid(benchSeed)
	spec.Techniques = []string{"FAC"}
	spec.Ns = []int64{524288}
	spec.Ps = []int{2}
	spec.Runs = 300
	spec.KeepPerRun = true
	res, err := experiment.RunHagerup(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := res.Cell("FAC", 524288, 2)
	if err != nil {
		t.Fatal(err)
	}
	kept, _ := metrics.TrimAbove(c.PerRun, 400)
	trimmed := metrics.Mean(kept)
	if trimmed <= 0 || trimmed > 60 {
		t.Errorf("trimmed mean %.3g s not in the paper's scale (25.82 s)", trimmed)
	}
	// The trimmed mean must not exceed the raw mean, and the max run
	// shows the heavy tail the paper's Figure 9 displays.
	if trimmed > c.Wasted.Mean {
		t.Errorf("trimmed mean %.3g > raw mean %.3g", trimmed, c.Wasted.Mean)
	}
	if c.Wasted.Max < 2*c.Wasted.Median {
		t.Errorf("no heavy tail: max %.3g vs median %.3g", c.Wasted.Max, c.Wasted.Median)
	}
}

// TestFigures3And4Verdict reproduces the §IV-A conclusion: CSS and TSS
// match the original publication's curves, SS diverges strongly.
func TestFigures3And4Verdict(t *testing.T) {
	for exp, spec := range map[int]experiment.TzenSpec{
		1: experiment.TzenExperiment1(),
		2: experiment.TzenExperiment2(),
	} {
		res, err := experiment.RunTzen(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		last := len(spec.Ps) - 1
		for _, label := range []string{"CSS", "TSS"} {
			ref, _ := refdata.TzenSpeedup(exp, label)
			sim := res.Curves[label][last].Speedup
			rel := math.Abs(metrics.RelativeDiscrepancy(sim, ref[last]))
			if rel > 25 {
				t.Errorf("experiment %d %s: |rel| = %.1f%%, paper found these reproduce", exp, label, rel)
			}
		}
		// Experiment 1's SS diverges: the original saturates at ~9 on the
		// BBN GP-1000; the simulation does not reproduce that value.
		if exp == 1 {
			ref, _ := refdata.TzenSpeedup(1, "SS")
			sim := res.Curves["SS"][last].Speedup
			rel := math.Abs(metrics.RelativeDiscrepancy(sim, ref[last]))
			if rel < 25 {
				t.Errorf("experiment 1 SS: |rel| = %.1f%%, paper found SS does NOT reproduce", rel)
			}
		}
	}
}

// TestMasterWorkerArchitecture (X1) exercises the paper's Figure 1
// protocol on the MSG stack end to end and checks the protocol
// invariants: every worker requests, executes, re-requests and is
// finalized; the master performs exactly ops+p message exchanges.
func TestMasterWorkerArchitecture(t *testing.T) {
	const n, p = 500, 5
	bw, lat := platform.FreeNetwork()
	pl, err := platform.Cluster("x", p, 1.0, bw, lat)
	if err != nil {
		t.Fatal(err)
	}
	workers := make([]string, p)
	for i := range workers {
		workers[i] = fmt.Sprintf("x-%d", i+1)
	}
	s, err := sched.New("GSS", sched.Params{N: n, P: p})
	if err != nil {
		t.Fatal(err)
	}
	res, err := msg.RunApp(msg.NewEngine(pl), msg.AppConfig{
		MasterHost:  "x-0",
		WorkerHosts: workers,
		Sched:       s,
		Work:        workload.NewConstant(0.01),
	})
	if err != nil {
		t.Fatal(err)
	}
	var tasks, ops int64
	for w := 0; w < p; w++ {
		tasks += res.TasksPerWorker[w]
		ops += res.OpsPerWorker[w]
		if res.OpsPerWorker[w] == 0 {
			t.Errorf("worker %d never got work", w)
		}
	}
	if tasks != n {
		t.Errorf("tasks executed = %d, want %d", tasks, n)
	}
	if ops != res.SchedOps {
		t.Errorf("ops mismatch: %d vs %d", ops, res.SchedOps)
	}
}

// TestFigure2InformationModel (X2) checks that the experiment specs
// carry exactly the information the paper's Figure 2 requires and reject
// incomplete configurations.
func TestFigure2InformationModel(t *testing.T) {
	// Application information: task count, technique, distribution with
	// µ/σ; execution information: number of runs, measured value.
	spec := experiment.HagerupGrid(1)
	if err := spec.Validate(); err != nil {
		t.Fatalf("canonical grid invalid: %v", err)
	}
	// Missing pieces must be rejected.
	for _, mutate := range []func(*experiment.HagerupSpec){
		func(s *experiment.HagerupSpec) { s.Techniques = nil },
		func(s *experiment.HagerupSpec) { s.Ns = nil },
		func(s *experiment.HagerupSpec) { s.Ps = nil },
		func(s *experiment.HagerupSpec) { s.Runs = 0 },
		func(s *experiment.HagerupSpec) { s.Mu = 0 },
		func(s *experiment.HagerupSpec) { s.H = -1 },
	} {
		bad := experiment.HagerupGrid(1)
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("incomplete spec accepted: %+v", bad)
		}
	}
	// System information: the workload spec validates its parameters.
	if _, err := (workload.Spec{Kind: "exponential", P1: -1}).Build(); err == nil {
		t.Error("invalid distribution accepted")
	}
}
