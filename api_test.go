package repro

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/workload"
)

func TestSimulateDefaults(t *testing.T) {
	res, err := Simulate("FAC2", 1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || res.AvgWasted <= 0 || res.SchedOps <= 0 {
		t.Fatalf("result = %+v", res)
	}
	var tasks int64
	for _, k := range res.TasksPerPE {
		tasks += k
	}
	if tasks != 1024 {
		t.Fatalf("tasks = %d", tasks)
	}
	if len(res.Compute) != 8 || len(res.Wasted) != 8 {
		t.Fatalf("per-PE slices wrong: %d %d", len(res.Compute), len(res.Wasted))
	}
}

func TestSimulateUnknownTechnique(t *testing.T) {
	if _, err := Simulate("LIFO", 10, 2); err == nil {
		t.Fatal("unknown technique accepted")
	}
}

func TestSimulateDeterministicSeed(t *testing.T) {
	a, err := Simulate("GSS", 4096, 16, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate("GSS", 4096, 16, WithSeed(9))
	if a.Makespan != b.Makespan {
		t.Fatal("same seed diverged")
	}
	c, _ := Simulate("GSS", 4096, 16, WithSeed(10))
	if a.Makespan == c.Makespan {
		t.Fatal("different seeds identical")
	}
}

func TestSimulateConstantSpeedup(t *testing.T) {
	res, err := Simulate("STAT", 1000, 10, WithConstant(0.01), WithOverhead(0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Speedup-10) > 1e-9 {
		t.Fatalf("speedup = %v, want 10", res.Speedup)
	}
	if res.AvgWasted != 0 {
		t.Fatalf("wasted = %v, want 0", res.AvgWasted)
	}
}

func TestWastedTimeSSOverheadTerm(t *testing.T) {
	// SS with constant workload and h=0.5: wasted = h·n/p exactly
	// (perfect balance, zero idle when p divides n).
	v, err := WastedTime("SS", 1000, 10, WithConstant(0.01), WithOverhead(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-50) > 1e-9 {
		t.Fatalf("SS wasted = %v, want 50", v)
	}
}

func TestMeanWastedTime(t *testing.T) {
	v, err := MeanWastedTime("FAC2", 1024, 8, 20, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || v > 200 {
		t.Fatalf("mean wasted = %v", v)
	}
	if _, err := MeanWastedTime("FAC2", 1024, 8, 0); err == nil {
		t.Fatal("runs=0 accepted")
	}
	// Determinism of the run-seed derivation.
	v2, _ := MeanWastedTime("FAC2", 1024, 8, 20, WithSeed(3))
	if v != v2 {
		t.Fatal("MeanWastedTime not deterministic")
	}
}

// TestMeanWastedTimeMatchesSerialLoop pins the parallel campaign to the
// facade's historical serial loop: one Simulate per run seeded with
// rng.RunSeed(base, r), summed in run order. The results must be
// identical bit for bit.
func TestMeanWastedTimeMatchesSerialLoop(t *testing.T) {
	const runs = 25
	const base = uint64(3)
	var sum float64
	for r := 0; r < runs; r++ {
		v, err := WastedTime("FAC2", 1024, 8, WithSeed(rng.RunSeed(base, r)))
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	want := sum / runs
	got, err := MeanWastedTime("FAC2", 1024, 8, runs, WithSeed(base))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("parallel mean %v != serial mean %v", got, want)
	}
	// And independent of the worker bound.
	serial, err := MeanWastedTime("FAC2", 1024, 8, runs, WithSeed(base), WithRunWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if serial != want {
		t.Fatalf("WithRunWorkers(1) mean %v != serial mean %v", serial, want)
	}
}

func TestWithBackend(t *testing.T) {
	ref, err := Simulate("FAC2", 1024, 8, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{"des", "msg"} {
		res, err := Simulate("FAC2", 1024, 8, WithSeed(11), WithBackend(backend))
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if rel := math.Abs(res.Makespan-ref.Makespan) / ref.Makespan; rel > 1e-6 {
			t.Errorf("%s makespan %v vs sim %v", backend, res.Makespan, ref.Makespan)
		}
	}
	if _, err := Simulate("FAC2", 64, 2, WithBackend("simgrid")); err == nil {
		t.Error("unknown backend accepted")
	}
	// Compare targets a named backend for all techniques at once.
	cmp, err := Compare([]string{"STAT", "FAC2"}, 512, 4, WithSeed(2), WithBackend("msg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp) != 2 || cmp["STAT"] <= 0 || cmp["FAC2"] <= 0 {
		t.Fatalf("Compare on msg backend = %v", cmp)
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := Simulate("FAC2", 0, 8); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Simulate("FAC2", -5, 8); err == nil {
		t.Error("n<0 accepted")
	}
	if _, err := Simulate("FAC2", 1024, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := WastedTime("FAC2", 1024, -1); err == nil {
		t.Error("p<0 accepted")
	}
	if _, err := MeanWastedTime("FAC2", 0, 8, 10); err == nil {
		t.Error("MeanWastedTime n=0 accepted")
	}
	if _, err := Compare([]string{"FAC2"}, 1024, 0); err == nil {
		t.Error("Compare p=0 accepted")
	}
	if _, err := Compare(nil, 1024, 8); err == nil {
		t.Error("Compare with no techniques accepted")
	}
}

func TestCompareOrdering(t *testing.T) {
	res, err := Compare([]string{"STAT", "SS", "BOLD"}, 8192, 8, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %v", res)
	}
	// SS pays h·n/p = 512; BOLD must beat both naive approaches here.
	if !(res["BOLD"] < res["SS"]) || !(res["BOLD"] < res["STAT"]) {
		t.Fatalf("ordering wrong: %v", res)
	}
	if _, err := Compare([]string{"NOPE"}, 10, 2); err == nil {
		t.Fatal("unknown technique accepted")
	}
}

func TestOptionsApply(t *testing.T) {
	// GSS(80): no chunk below 80 except the final remainder → far fewer
	// ops than GSS(1).
	a, err := Simulate("GSS", 100000, 8, WithConstant(0.001), WithMinChunk(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate("GSS", 100000, 8, WithConstant(0.001), WithMinChunk(80))
	if err != nil {
		t.Fatal(err)
	}
	if b.SchedOps >= a.SchedOps {
		t.Fatalf("GSS(80) ops %d >= GSS(1) ops %d", b.SchedOps, a.SchedOps)
	}
	// Heterogeneous speeds shift work.
	h, err := Simulate("SS", 10000, 2, WithConstant(0.001), WithSpeeds([]float64{3, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if h.TasksPerPE[0] < 2*h.TasksPerPE[1] {
		t.Fatalf("fast PE tasks = %v", h.TasksPerPE)
	}
	// Start skew matters to static chunking.
	s, err := Simulate("STAT", 1000, 4, WithConstant(0.01), WithStartTimes([]float64{0, 0, 0, 5}))
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan < 5 {
		t.Fatalf("makespan %v ignores start skew", s.Makespan)
	}
}

func TestTechniquesList(t *testing.T) {
	names := Techniques()
	if len(names) != 15 {
		t.Fatalf("Techniques() = %v", names)
	}
	for _, name := range names {
		if _, err := Simulate(name, 512, 4); err != nil {
			t.Errorf("Simulate(%s): %v", name, err)
		}
	}
}

func TestWithTSSBoundsAndAlpha(t *testing.T) {
	res, err := Simulate("TSS", 1000, 4, WithConstant(0.01), WithTSSBounds(50, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.SchedOps == 0 {
		t.Fatal("no ops")
	}
	if _, err := Simulate("TAP", 1000, 4, WithAlpha(2.0)); err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate("WF", 1000, 2, WithWeights([]float64{1, 3})); err != nil {
		t.Fatal(err)
	}
}

func TestWithOverheadInDynamics(t *testing.T) {
	plain, err := Simulate("SS", 500, 8, WithConstant(0.001), WithOverhead(0.01))
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Simulate("SS", 500, 8, WithConstant(0.001), WithOverhead(0.01), WithOverheadInDynamics())
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Makespan <= plain.Makespan {
		t.Fatalf("dynamics makespan %v <= plain %v", dyn.Makespan, plain.Makespan)
	}
}

// TestWithIncreasingHonorsOwnTaskCount is a regression test: the ramp's
// task count is part of the workload's shape (it sets the slope), so the
// declarative campaign path must not substitute the simulation's n for
// it. The declarative path (WithIncreasing) must match the opaque
// fallback path (WithWorkload with the identical workload) bit for bit.
func TestWithIncreasingHonorsOwnTaskCount(t *testing.T) {
	const n, p, runs = 1000, 4, 5
	declarative, err := MeanWastedTime("FAC2", n, p, runs,
		WithIncreasing(0.001, 0.002, 100), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := MeanWastedTime("FAC2", n, p, runs,
		WithWorkload(workload.NewIncreasing(0.001, 0.002, 100)), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if declarative != direct {
		t.Fatalf("declarative path %v != direct path %v (workload N overridden)", declarative, direct)
	}
}

// TestWithCacheServesRepeatedCampaigns: a repeated MeanWastedTime and
// Compare with WithCache must return the exact live-run values (served
// through the in-process memory tier and the on-disk store).
func TestWithCacheServesRepeatedCampaigns(t *testing.T) {
	dir := t.TempDir()
	live, err := MeanWastedTime("FAC2", 1024, 8, 10, WithSeed(5), WithCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := MeanWastedTime("FAC2", 1024, 8, 10, WithSeed(5), WithCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	if cached != live {
		t.Fatalf("cached mean %v != live mean %v", cached, live)
	}
	// And bit-identical to the uncached path.
	plain, err := MeanWastedTime("FAC2", 1024, 8, 10, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if live != plain {
		t.Fatalf("cache-enabled mean %v != plain mean %v", live, plain)
	}

	cmpLive, err := Compare([]string{"FAC2", "GSS"}, 512, 4, WithSeed(5), WithCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	cmpCached, err := Compare([]string{"FAC2", "GSS"}, 512, 4, WithSeed(5), WithCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	for tech, v := range cmpLive {
		if cmpCached[tech] != v {
			t.Fatalf("cached Compare[%s] = %v, want %v", tech, cmpCached[tech], v)
		}
	}
}

// TestDegenerateWorkloadFallsBackToDirectPath: facade constructors
// accept parameter sets the declarative workload parser rejects (uniform
// with hi == lo); those must keep working through the direct path
// instead of erroring on the campaign-spec path.
func TestDegenerateWorkloadFallsBackToDirectPath(t *testing.T) {
	viaOption, err := MeanWastedTime("SS", 1000, 4, 5, WithUniform(2, 2), WithSeed(1))
	if err != nil {
		t.Fatalf("degenerate uniform rejected: %v", err)
	}
	viaWorkload, err := MeanWastedTime("SS", 1000, 4, 5,
		WithWorkload(workload.NewUniformRandom(2, 2)), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if viaOption != viaWorkload {
		t.Fatalf("degenerate uniform mean %v != direct-path mean %v", viaOption, viaWorkload)
	}
	if _, err := Compare([]string{"SS"}, 100, 2, WithUniform(2, 2)); err != nil {
		t.Fatalf("Compare with degenerate uniform rejected: %v", err)
	}
}

// TestWithCachePopulatesEverySeparateDirectory: the in-process memory
// tier is scoped per directory, so a campaign repeated against a second
// directory must still write that directory's on-disk store.
func TestWithCachePopulatesEverySeparateDirectory(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	if _, err := MeanWastedTime("FAC2", 512, 4, 5, WithSeed(8), WithCache(dirA)); err != nil {
		t.Fatal(err)
	}
	if _, err := MeanWastedTime("FAC2", 512, 4, 5, WithSeed(8), WithCache(dirB)); err != nil {
		t.Fatal(err)
	}
	for name, dir := range map[string]string{"first": dirA, "second": dirB} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) == 0 {
			t.Fatalf("%s cache directory %s not populated", name, dir)
		}
	}
}

// TestCompareRejectsDuplicateTechniques: a duplicate name would
// silently collapse into one key of the returned map.
func TestCompareRejectsDuplicateTechniques(t *testing.T) {
	if _, err := Compare([]string{"FAC2", "SS", "FAC2"}, 64, 2); err == nil ||
		!strings.Contains(err.Error(), `duplicate technique "FAC2"`) {
		t.Fatalf("Compare = %v, want duplicate technique error", err)
	}
	// The non-declarative path validates too.
	if _, err := Compare([]string{"SS", "SS"}, 64, 2,
		WithWorkload(workload.NewConstant(1))); err == nil ||
		!strings.Contains(err.Error(), "duplicate technique") {
		t.Fatalf("non-declarative Compare = %v, want duplicate technique error", err)
	}
}

// TestProcTierLRUBound: the process-lifetime memory tier map must not
// grow without bound when one process cycles through many cache
// directories; eviction only drops the memory layer, never disk data.
func TestProcTierLRUBound(t *testing.T) {
	base := t.TempDir()
	first := filepath.Join(base, "dir0")
	m0 := memTierFor(first)
	for i := 1; i < procTierCap+8; i++ {
		memTierFor(filepath.Join(base, fmt.Sprintf("dir%d", i)))
	}
	procMu.Lock()
	size := len(procTiers)
	_, firstAlive := procTiers[first]
	procMu.Unlock()
	if size > procTierCap {
		t.Fatalf("procTiers holds %d tiers, cap is %d", size, procTierCap)
	}
	if firstAlive {
		t.Fatal("least-recently-used tier survived past the cap")
	}
	// A re-touched directory is most recently used and must survive.
	touched := filepath.Join(base, fmt.Sprintf("dir%d", procTierCap))
	memTierFor(touched)
	for i := 0; i < procTierCap-1; i++ {
		memTierFor(filepath.Join(base, fmt.Sprintf("fresh%d", i)))
	}
	procMu.Lock()
	_, touchedAlive := procTiers[touched]
	procMu.Unlock()
	if !touchedAlive {
		t.Fatal("most-recently-used tier evicted before older ones")
	}
	// A fresh tier for a reused directory still serves the disk store:
	// campaigns only lose the memory layer on eviction.
	if m1 := memTierFor(first); m1 == m0 {
		t.Fatal("evicted tier instance resurrected; want a fresh memory layer")
	}
}
