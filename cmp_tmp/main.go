package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/experiment"
)

func main() {
	v, err := repro.MeanWastedTime("FAC2", 2048, 16, 25, repro.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mwt %.17g\n", v)
	m, err := repro.Compare([]string{"STAT", "SS", "GSS", "FAC2"}, 1024, 8, repro.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range []string{"STAT", "SS", "GSS", "FAC2"} {
		fmt.Printf("cmp %s %.17g\n", t, m[t])
	}
	spec := experiment.HagerupGrid(20170601)
	spec.Ns = []int64{1024}
	spec.Ps = []int{2, 16}
	spec.Techniques = []string{"SS", "FAC"}
	spec.Runs = 50
	spec.KeepPerRun = true
	res, err := experiment.RunHagerup(spec)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range res.Cells {
		fmt.Printf("cell %s n=%d p=%d mean=%.17g ops=%.17g run0=%.17g\n",
			c.Technique, c.N, c.P, c.Wasted.Mean, c.MeanOps, c.PerRun[0])
	}
	g, err := experiment.GSSSweep(1024, 8, 20, 1, 0.5, 99)
	if err != nil {
		log.Fatal(err)
	}
	for i := range g.Ks {
		fmt.Printf("gss k=%d wasted=%.17g ops=%.17g\n", g.Ks[i], g.Wasted[i], g.Ops[i])
	}
}
