// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus the ablations of DESIGN.md. Each figure
// benchmark regenerates the series the paper reports (at a reduced run
// count so `go test -bench=.` stays tractable; cmd/repro runs the full
// 1000-run configuration) and prints the rows once, alongside the maximum
// relative discrepancy against the pinned reference dataset.
package repro_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/refdata"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchSeed differs from refdata.Seed, as the paper's simulations used a
// different (unknown) seed than the original publication.
const benchSeed = 20170601

// printOnce guards the per-benchmark row printing so repeated b.N
// iterations do not spam the output.
var printOnce sync.Map

func printSeries(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Print(text)
	}
}

// --- Figures 3 and 4: the TSS publication experiments -------------------

func benchTzen(b *testing.B, exp int) {
	spec := experiment.TzenExperiment1()
	if exp == 2 {
		spec = experiment.TzenExperiment2()
	}
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTzen(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			text := fmt.Sprintf("\nFigure %d (%s): speedup by number of PEs\n", exp+2, spec.Name)
			for _, c := range spec.Curves {
				text += fmt.Sprintf("  %-8s", c.Label)
				for _, pt := range res.Curves[c.Label] {
					text += fmt.Sprintf(" %6.1f", pt.Speedup)
				}
				text += "\n"
			}
			printSeries(fmt.Sprintf("tzen%d", exp), text)
			last := len(spec.Ps) - 1
			b.ReportMetric(res.Curves["TSS"][last].Speedup, "TSS_speedup_p80")
			b.ReportMetric(res.Curves["SS"][last].Speedup, "SS_speedup_p80")
		}
	}
}

func BenchmarkFigure3_TSSExperiment1(b *testing.B) { benchTzen(b, 1) }
func BenchmarkFigure4_TSSExperiment2(b *testing.B) { benchTzen(b, 2) }

// --- Figures 5-8: the Hagerup wasted-time grid ---------------------------

// benchRuns returns the reduced per-cell run count for a grid benchmark:
// enough for a stable mean, scaled down for the big task counts.
func benchRuns(n int64) int {
	switch {
	case n >= 524288:
		return 5
	case n >= 65536:
		return 10
	default:
		return 40
	}
}

func benchHagerup(b *testing.B, figure int, n int64) {
	spec := experiment.HagerupGrid(benchSeed)
	spec.Ns = []int64{n}
	spec.Runs = benchRuns(n)
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunHagerup(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		if i != 0 {
			continue
		}
		text := fmt.Sprintf("\nFigure %d (%d tasks, %d runs): avg wasted time [s] for p=%v\n",
			figure, n, spec.Runs, spec.Ps)
		var maxRel float64
		for _, tech := range spec.Techniques {
			_, means, err := res.Series(tech, n)
			if err != nil {
				b.Fatal(err)
			}
			text += fmt.Sprintf("  %-5s", tech)
			for pi, mean := range means {
				text += fmt.Sprintf(" %10.4g", mean)
				ref, ok := refdata.Wasted(tech, n, spec.Ps[pi])
				if !ok {
					b.Fatalf("missing reference %s/%d/%d", tech, n, spec.Ps[pi])
				}
				// FAC with 2 PEs is the paper's documented outlier.
				if tech == "FAC" && spec.Ps[pi] == 2 {
					continue
				}
				if rel := math.Abs(metrics.RelativeDiscrepancy(mean, ref)); rel > maxRel {
					maxRel = rel
				}
			}
			text += "\n"
		}
		text += fmt.Sprintf("  max |relative discrepancy| vs reference (FAC/2-PE excluded): %.1f%%\n", maxRel)
		text += fmt.Sprintf("  (reduced %d-run sample — sampling noise dominates; the paper-faithful\n", spec.Runs)
		text += "   1000-run values are in EXPERIMENTS.md and via 'go run ./cmd/repro hagerup')\n"
		printSeries(fmt.Sprintf("hagerup%d", n), text)
		b.ReportMetric(maxRel, "max_rel_discrepancy_%")
	}
}

func BenchmarkFigure5_Hagerup1024(b *testing.B)   { benchHagerup(b, 5, 1024) }
func BenchmarkFigure6_Hagerup8192(b *testing.B)   { benchHagerup(b, 6, 8192) }
func BenchmarkFigure7_Hagerup65536(b *testing.B)  { benchHagerup(b, 7, 65536) }
func BenchmarkFigure8_Hagerup524288(b *testing.B) { benchHagerup(b, 8, 524288) }

// --- Figure 9: per-run wasted time of FAC, 2 PEs, 524288 tasks -----------

func BenchmarkFigure9_FACPerRun(b *testing.B) {
	spec := experiment.HagerupGrid(benchSeed)
	spec.Techniques = []string{"FAC"}
	spec.Ns = []int64{524288}
	spec.Ps = []int{2}
	spec.Runs = 100
	spec.KeepPerRun = true
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunHagerup(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		if i != 0 {
			continue
		}
		c, err := res.Cell("FAC", 524288, 2)
		if err != nil {
			b.Fatal(err)
		}
		kept, excluded := metrics.TrimAbove(c.PerRun, 400)
		text := fmt.Sprintf("\nFigure 9 (FAC, 2 workers, 524288 tasks, %d runs):\n", spec.Runs)
		text += fmt.Sprintf("  mean %.4g s; runs > 400 s: %d; trimmed mean %.4g s (paper: 25.82 s)\n",
			c.Wasted.Mean, excluded, metrics.Mean(kept))
		printSeries("fig9", text)
		b.ReportMetric(c.Wasted.Mean, "mean_wasted_s")
		b.ReportMetric(metrics.Mean(kept), "trimmed_mean_s")
	}
}

// --- Engine: the parallel campaign runner --------------------------------

// BenchmarkCampaignParallel measures the paper's canonical unit of work —
// one 1000-replication grid cell (Table III) — through the engine's
// campaign runner, serial (Workers=1, the shape of the old hand-rolled
// loops) versus fanned out over all cores. The parallel/serial ratio is
// the wall-clock speedup of every Figure 5–8 cell; both variants produce
// bit-identical aggregates.
func BenchmarkCampaignParallel(b *testing.B) {
	campaign := func(workers int) engine.Campaign {
		return engine.Campaign{
			Points: []engine.RunSpec{{
				Technique: "FAC2",
				N:         1024,
				P:         8,
				Work:      workload.NewExponential(1),
				H:         0.5,
				RNGState:  benchSeed,
			}},
			Replications: 1000,
			Workers:      workers,
		}
	}
	var serialMean, parallelMean float64
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := campaign(1).Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			serialMean = res.Aggregates[0].Wasted.Mean
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := campaign(0).Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			parallelMean = res.Aggregates[0].Wasted.Mean
		}
	})
	if serialMean != 0 && parallelMean != 0 && serialMean != parallelMean {
		b.Fatalf("serial mean %v != parallel mean %v", serialMean, parallelMean)
	}
}

// --- Tables ---------------------------------------------------------------

// BenchmarkTableII_ChunkCalculators measures the per-operation cost of
// every technique's chunk calculation (Table II's subjects). Techniques
// with a bounded operation count (STAT issues exactly p chunks) are
// re-created on exhaustion; the construction cost is part of the
// measured loop and negligible for the others.
func BenchmarkTableII_ChunkCalculators(b *testing.B) {
	for _, tech := range sched.Names() {
		b.Run(tech, func(b *testing.B) {
			params := sched.Params{N: 1 << 40, P: 8, H: 0.5, Mu: 1, Sigma: 1}
			s, err := sched.New(tech, params)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s.Next(i%8, 0) == 0 {
					if s, err = sched.New(tech, params); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkTableIII_GridCell measures one full cell of the Table III grid
// (FAC2, 8192 tasks, 64 PEs, one run per iteration).
func BenchmarkTableIII_GridCell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, err := experiment.OneHagerupRun(context.Background(), "FAC2", 8192, 64, 1, 0.5, rng.StreamFor(benchSeed, i))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md A1-A5) ------------------------------------------

// BenchmarkAblationOverheadAccounting compares the paper's post-hoc h
// accounting with charging h inside the master dynamics (A1).
func BenchmarkAblationOverheadAccounting(b *testing.B) {
	const n, p, h = 8192, 64, 0.5
	run := func(inDynamics bool) (float64, error) {
		var sum float64
		const runs = 20
		for r := 0; r < runs; r++ {
			s, err := sched.New("FAC2", sched.Params{N: n, P: p, H: h, Mu: 1, Sigma: 1})
			if err != nil {
				return 0, err
			}
			res, err := sim.Run(sim.Config{
				P: p, Sched: s, Work: workload.NewExponential(1),
				RNG: rng.StreamFor(benchSeed+1, r),
				H:   h, HInDynamics: inDynamics,
			})
			if err != nil {
				return 0, err
			}
			if inDynamics {
				// h already inside the makespan; only idle counts extra.
				sum += metrics.AverageWasted(res.Makespan, res.Compute, 0, 0)
			} else {
				sum += metrics.AverageWasted(res.Makespan, res.Compute, res.SchedOps, h)
			}
		}
		return sum / runs, nil
	}
	for i := 0; i < b.N; i++ {
		post, err := run(false)
		if err != nil {
			b.Fatal(err)
		}
		dyn, err := run(true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printSeries("a1", fmt.Sprintf(
				"\nAblation A1 (FAC2, 8192x64): wasted %.3g s post-hoc vs %.3g s with h in dynamics\n",
				post, dyn))
			b.ReportMetric(post, "posthoc_wasted_s")
			b.ReportMetric(dyn, "dynamics_wasted_s")
		}
	}
}

// BenchmarkAblationChunkSampling compares the Gamma fast path with exact
// per-task exponential summation (A2).
func BenchmarkAblationChunkSampling(b *testing.B) {
	b.Run("gamma-fast-path", func(b *testing.B) {
		r := rng.New(1)
		w := workload.NewExponential(1)
		for i := 0; i < b.N; i++ {
			_ = w.ChunkTime(0, 1024, r)
		}
	})
	b.Run("exact-erlang-sum", func(b *testing.B) {
		r := rng.New(1)
		for i := 0; i < b.N; i++ {
			_ = rng.ErlangSum(r, 1024, 1)
		}
	})
}

// BenchmarkAblationNetworkCost compares the paper's free network with a
// realistic per-message cost (A3).
func BenchmarkAblationNetworkCost(b *testing.B) {
	const n, p = 8192, 64
	run := func(msgCost float64, seedOff int) float64 {
		s, err := sched.New("FAC2", sched.Params{N: n, P: p, H: 0.5, Mu: 1, Sigma: 1})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			P: p, Sched: s, Work: workload.NewExponential(1),
			RNG:            rng.StreamFor(benchSeed+2, seedOff),
			PerMessageCost: msgCost,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Makespan
	}
	for i := 0; i < b.N; i++ {
		free := run(0, i)
		lan := run(200e-6, i)
		if i == 0 {
			printSeries("a3", fmt.Sprintf(
				"\nAblation A3 (FAC2, 8192x64): makespan %.4g s free network vs %.4g s with 200us round trips\n",
				free, lan))
		}
	}
}

// BenchmarkExtensionAdaptive runs the future-work techniques (paper §VI)
// on a Hagerup cell (A4).
func BenchmarkExtensionAdaptive(b *testing.B) {
	const n, p = 8192, 64
	for _, tech := range []string{"TAP", "WF", "AWF-B", "AWF-C", "AF"} {
		b.Run(tech, func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				w, _, err := experiment.OneHagerupRun(context.Background(), tech, n, p, 1, 0.5, rng.StreamFor(benchSeed+3, i))
				if err != nil {
					b.Fatal(err)
				}
				sum += w
			}
			b.ReportMetric(sum/float64(b.N), "wasted_s")
		})
	}
}

// BenchmarkAblationSimulatorBackend compares the two simulator backends
// on the same scenario (A5): the Hagerup-replica fast simulator vs. the
// full MSG process simulation. Shape equality is asserted by the
// integration tests; this benchmark quantifies the cost ratio.
func BenchmarkAblationSimulatorBackend(b *testing.B) {
	b.Run("fastsim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := sched.New("GSS", sched.Params{N: 2000, P: 8})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(sim.Config{P: 8, Sched: s, Work: workload.NewConstant(0.01)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("msg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spec := experiment.TzenExperiment2()
			spec.N = 2000
			spec.Ps = []int{8}
			spec.Curves = spec.Curves[2:3] // GSS(1) only
			spec.UseMSG = true
			if _, err := experiment.RunTzen(context.Background(), spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtensionGSSSweep runs the TSS publication's GSS(k) parameter
// sweep on a Hagerup cell.
func BenchmarkExtensionGSSSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.GSSSweep(context.Background(), 8192, 8, 10, 1, 0.5, benchSeed+4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			text := "\nExtension: GSS(k) sweep (8192 tasks, 8 PEs): wasted [s] per k\n  "
			for j, k := range res.Ks {
				text += fmt.Sprintf(" k=%d: %.3g ", k, res.Wasted[j])
			}
			printSeries("gsssweep", text+"\n")
		}
	}
}

// BenchmarkExtensionCSSSweep runs the TSS publication's CSS chunk-size
// study (optimal k near n/p with speedup ~69 of 72).
func BenchmarkExtensionCSSSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.CSSSweep(context.Background(), 100000, 72, 110e-6, 5e-6, 200e-6)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := len(res.Ks) - 1
			printSeries("csssweep", fmt.Sprintf(
				"\nExtension: CSS(k) study: speedup %.1f at k=%d (publication: 69.2 at 1388)\n",
				res.Speedups[last], res.Ks[last]))
			b.ReportMetric(res.Speedups[last], "speedup_at_n_over_p")
		}
	}
}

// BenchmarkExtensionResilience measures the makespan penalty of one
// worker failure under STAT vs FAC2 (earlier-work [3] scenario).
func BenchmarkExtensionResilience(b *testing.B) {
	const n, p = 4000, 8
	bw, lat := platform.FreeNetwork()
	run := func(tech string, failures []msg.Failure) float64 {
		pl, err := platform.Cluster("b", p, 1.0, bw, lat)
		if err != nil {
			b.Fatal(err)
		}
		workers := make([]string, p)
		for i := range workers {
			workers[i] = fmt.Sprintf("b-%d", i+1)
		}
		s, err := sched.New(tech, sched.Params{N: n, P: p, Mu: 0.01, Sigma: 0})
		if err != nil {
			b.Fatal(err)
		}
		res, err := msg.RunResilientApp(msg.NewEngine(pl), msg.ResilientConfig{
			AppConfig: msg.AppConfig{
				MasterHost: "b-0", WorkerHosts: workers,
				Sched: s, Work: workload.NewConstant(0.01), ReferenceSpeed: 1,
			},
			Failures: failures,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Makespan
	}
	failures := []msg.Failure{{Worker: 2, AfterChunks: 1}}
	for i := 0; i < b.N; i++ {
		statPenalty := run("STAT", failures) / run("STAT", nil)
		fac2Penalty := run("FAC2", failures) / run("FAC2", nil)
		if i == 0 {
			printSeries("resilience", fmt.Sprintf(
				"\nExtension: one-failure makespan penalty: STAT %.2fx vs FAC2 %.2fx\n",
				statPenalty, fac2Penalty))
			b.ReportMetric(statPenalty, "STAT_penalty_x")
			b.ReportMetric(fac2Penalty, "FAC2_penalty_x")
		}
	}
}
