// Package repro is a from-scratch Go reproduction of
//
//	Hoffeins, Ciorba, Banicescu: "Examining the Reproducibility of Using
//	Dynamic Loop Scheduling Techniques in Scientific Applications"
//	(IPDPS Workshops / PDSEC, 2017),
//
// which verifies a SimGrid-MSG implementation of dynamic loop scheduling
// (DLS) techniques by reproducing scheduling experiments from the TSS
// publication (Tzen & Ni 1993) and the BOLD publication (Hagerup 1997).
//
// The package itself is a thin, stable facade over the full system —
// since the unified Runner API it is a convenience layer over a
// campaign.LocalRunner:
//
//   - campaign — the public execution API: declarative Spec (grid ×
//     replications × seed policy as hashable plain data), per-run Event
//     streaming into Sinks, client-side Aggregator, and the Runner
//     interface (Submit, Wait, Stream, Cancel, Describe) that makes
//     local and remote execution interchangeable
//   - client — the typed Go SDK for the dlsimd /v1 HTTP API; a
//     client.Client implements campaign.Runner, and the same Spec run
//     locally or remotely yields bit-identical streams and aggregates
//     (API.md documents the wire contract)
//   - internal/sched — the 15 DLS chunk calculators (STAT, SS, CSS, FSC,
//     GSS, TSS, FAC, FAC2, BOLD, TAP, WF, AWF, AWF-B, AWF-C, AF)
//   - internal/engine — the unified simulation layer: pluggable Backend
//     implementations behind a name registry, the declarative
//     CampaignSpec (a JSON-serializable, canonically hashable grid
//     description every entry point compiles its campaigns to) and the
//     streaming results pipeline, where a parallel worker pool emits
//     per-run events to pluggable Sinks in deterministic order
//   - internal/cache — the content-addressed result store behind
//     repeated campaigns: results are keyed by the spec's canonical
//     hash, and determinism makes equal hashes imply equal results
//   - internal/jobs, internal/service, cmd/dlsimd — the campaign
//     service: a bounded job queue with queued/running/done/failed/
//     cancelled lifecycle states and singleflight deduplication on the
//     spec hash (concurrent identical submissions share one
//     execution), exposed over HTTP with status, cancellation and
//     streaming JSONL/CSV result endpoints
//   - internal/sim — the Hagerup-replica master–worker simulator (the
//     "sim" backend)
//   - internal/des, internal/msg, internal/platform — the SimGrid-MSG
//     equivalent (process-oriented kernel, mailboxes, platform/deployment
//     XML), exposed as the "des" and "msg" backends
//   - internal/workload, internal/rng — task-time generators over a
//     bit-exact rand48 family
//   - internal/metrics, internal/experiment, internal/refdata — wasted
//     time/speedup metrics, the experiment farm and the reference data
//
// Quick start:
//
//	wasted, err := repro.WastedTime("FAC2", 8192, 64,
//	    repro.WithExponential(1), repro.WithOverhead(0.5), repro.WithSeed(42))
//
// Every simulation accepts a backend selection: WithBackend("msg") runs
// the same scenario through the full SimGrid-MSG process model instead
// of the fast chunk-granularity simulator, and Backends() lists the
// registered names. Multi-run entry points (MeanWastedTime, Compare)
// execute their replications concurrently through the engine's streaming
// campaign pipeline; results are bit-identical to a serial loop for a
// given seed, and WithCache(dir) serves repeated campaigns from the
// content-addressed result store without re-simulation.
//
// Multi-run entry points validate their inputs strictly: a duplicate
// technique in Compare (which would silently collapse into one map
// key) is rejected with a descriptive error, as it is at the campaign
// spec level.
//
// Execution is context-aware end to end: the Context variants
// (SimulateContext, MeanWastedTimeContext, CompareContext) — and every
// layer beneath them down to Backend.Run, the campaign worker pool,
// Sinks and the cache — honor cancellation. Cancelling mid-campaign
// stops scheduling new runs, drains the workers without goroutine
// leaks, closes every sink exactly once and returns an error wrapping
// context.Canceled. The plain entry points are equivalent to the
// Context variants under context.Background().
//
// # Performance
//
// The simulation hot path is allocation-free in steady state. The
// "sim" backend's event queue is a specialized non-boxing min-heap
// (container/heap would box one event per scheduling operation), and
// campaign execution runs through per-worker run arenas: the optional
// engine.RunnerBackend extension builds one engine.Runner per campaign
// point, which validates the spec once, resets the scheduler in place
// (sched.Resetter — all 15 techniques implement it) and reuses the
// result buffers and rand48 state via sim.RunInto. The results
// pipeline distributes work as replication chunks — (point,
// replication-range) batches auto-sized from the grid and the worker
// count, tunable via engine.ExecConfig.ChunkSize and dlsimd -chunk —
// and each worker's runner survives point switches through the
// engine.Rebinder extension, so one execution context (arena, pooled
// buffers, rand48 slot) serves a worker's whole share of the grid.
// Completed chunks reorder through a fixed-size ring, one channel send
// and at most one broadcast per chunk. None of this changes a single
// output bit: golden tests prove the optimized path byte-identical
// (JSONL streams and aggregates) to a naive
// one-Backend.Run-per-replication execution across backends, seed
// policies, worker counts and chunk sizes, and CI pins sim.Run at 0
// steady-state allocs/op and gates multi-core scaling (>= 1.5x at 4
// workers). cmd/benchtraj records absolute throughput, allocs/run and
// the worker-scaling curve (BENCH_PR6.json) and takes
// -cpuprofile/-memprofile for pprof analysis; dlsimd -pprof exposes
// live /debug/pprof/ handlers.
//
// The benchmark harness regenerating every figure of the paper lives in
// bench_test.go and cmd/repro; see DESIGN.md and EXPERIMENTS.md.
package repro
