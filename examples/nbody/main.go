// N-body example: the paper's introduction motivates DLS with N-body
// simulations ([7]: "Balancing processor loads and exploiting data
// locality in N-body simulations"). This example models the force
// computation loop of a clustered particle system: a body in a dense
// region interacts with many neighbours, one in a void with few, so
// per-body cost is heavy-tailed and the loop is irregular.
//
// It defines a custom workload on top of the library's Workload
// interface — a deterministic Pareto-like per-body cost derived by
// hashing the body index (bodies are stored in construction order, not
// sorted by density) — and compares static chunking with the dynamic
// techniques over the loop.
//
//	go run ./examples/nbody [-bodies N] [-p PEs]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

// forceProfile is the per-body cost model: body i's force computation
// costs base·m(i), where the interaction multiplier m(i) follows a
// truncated Pareto law (tail index 1.5, cap 50×) derived deterministically
// from the body index. The profile is deterministic, so every scheduling
// technique sees the identical loop.
type forceProfile struct {
	n    int64
	base float64
}

// multiplier returns the Pareto-like interaction factor of body i.
func (f forceProfile) multiplier(i int64) float64 {
	// A uniform in (0,1] from the body index.
	u := (float64(rng.Mix64(uint64(i))>>11) + 1) / (1 << 53)
	m := math.Pow(u, -1/1.5)
	if m > 50 {
		m = 50
	}
	return m
}

func (f forceProfile) Name() string { return "nbody-force" }

func (f forceProfile) Time(i int64, _ *rng.Rand48) float64 {
	return f.base * f.multiplier(i)
}

func (f forceProfile) ChunkTime(start, count int64, r *rng.Rand48) float64 {
	var s float64
	for i := int64(0); i < count; i++ {
		s += f.Time(start+i, r)
	}
	return s
}

func (f forceProfile) Mean() float64 {
	return f.ChunkTime(0, f.n, nil) / float64(f.n)
}

func (f forceProfile) Std() float64 {
	mean := f.Mean()
	var ss float64
	for i := int64(0); i < f.n; i++ {
		d := f.Time(i, nil) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(f.n))
}

func (f forceProfile) Deterministic() bool { return true }

func main() {
	log.SetFlags(0)
	bodies := flag.Int64("bodies", 50000, "number of bodies (loop iterations)")
	p := flag.Int("p", 16, "number of PEs")
	flag.Parse()

	work := forceProfile{n: *bodies, base: 50e-6}
	seq := work.ChunkTime(0, *bodies, nil)
	fmt.Printf("N-body force loop: %d bodies on %d PEs\n", *bodies, *p)
	fmt.Printf("per-body cost: heavy-tailed, mu=%.3g s, sigma=%.3g s (CoV %.2f)\n",
		work.Mean(), work.Std(), work.Std()/work.Mean())
	fmt.Printf("sequential time: %.2f s\n\n", seq)

	type row struct {
		tech    string
		speedup float64
		cov     float64
		ops     int64
	}
	var rows []row
	for _, tech := range []string{"STAT", "SS", "GSS", "TSS", "FAC", "FAC2", "BOLD", "AF"} {
		s, err := sched.New(tech, sched.Params{
			N: *bodies, P: *p,
			H:  10e-6, // a realistic lock-and-compute scheduling cost
			Mu: work.Mean(), Sigma: work.Std(),
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			P: *p, Sched: s, Work: work,
			H: 10e-6, HInDynamics: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{
			tech:    tech,
			speedup: seq / res.Makespan,
			cov:     metrics.CoV(res.Compute),
			ops:     res.SchedOps,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].speedup > rows[j].speedup })

	fmt.Printf("  %-6s  %8s  %14s  %10s\n", "tech", "speedup", "load CoV", "sched ops")
	for _, r := range rows {
		fmt.Printf("  %-6s  %8.2f  %14.4f  %10d\n", r.tech, r.speedup, r.cov, r.ops)
	}
	fmt.Printf("\nStatic chunking locks in whatever density mix each PE's slice happens\n")
	fmt.Printf("to contain (highest load CoV). The decreasing-chunk techniques smooth\n")
	fmt.Printf("the heavy tail at a fraction of SS's %d scheduling operations.\n", *bodies)
}
