// Time-stepping example: AWF "has originally been developed for
// time-stepping applications ... by closely following the rate of change
// in PE speed after each time-step" (paper §II). This example runs a
// wave-packet-style simulation of many time steps, where the underlying
// machine drifts: one PE degrades mid-run (an external job lands on it).
//
// AWF measures each step and re-weights the next; FAC2 stays oblivious.
// The example prints per-step makespans and the cumulative advantage.
//
//	go run ./examples/timestepped [-steps N] [-n tasks-per-step]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	steps := flag.Int("steps", 12, "number of time steps")
	n := flag.Int64("n", 20000, "loop iterations per time step")
	flag.Parse()

	const p = 4
	// Machine drift: from step 4 on, PE 3 runs at 30% (co-scheduled job).
	speedsAt := func(step int) []float64 {
		s := []float64{1, 1, 1, 1}
		if step >= 4 {
			s[3] = 0.3
		}
		return s
	}
	work := workload.NewConstant(0.0005)

	fmt.Printf("wave-packet run: %d time steps x %d iterations on %d PEs\n", *steps, *n, p)
	fmt.Printf("PE 3 degrades to 30%% speed from step 4 on\n\n")
	fmt.Printf("  %4s  %12s  %12s  %10s\n", "step", "FAC2 [s]", "AWF [s]", "AWF weights")

	var totalFAC2, totalAWF float64
	weights := []float64(nil) // AWF starts with equal weights
	for step := 0; step < *steps; step++ {
		speeds := speedsAt(step)

		fac2, err := sched.New("FAC2", sched.Params{N: *n, P: p})
		if err != nil {
			log.Fatal(err)
		}
		resF, err := sim.Run(sim.Config{P: p, Sched: fac2, Work: work, Speeds: speeds})
		if err != nil {
			log.Fatal(err)
		}
		totalFAC2 += resF.Makespan

		awf, err := sched.NewAWF(sched.Params{N: *n, P: p, Weights: weights})
		if err != nil {
			log.Fatal(err)
		}
		resA, err := sim.Run(sim.Config{P: p, Sched: awf, Work: work, Speeds: speeds})
		if err != nil {
			log.Fatal(err)
		}
		totalAWF += resA.Makespan
		weights = awf.UpdatedWeights() // measured this step, applied next

		fmt.Printf("  %4d  %12.3f  %12.3f  [%.2f %.2f %.2f %.2f]\n",
			step, resF.Makespan, resA.Makespan, weights[0], weights[1], weights[2], weights[3])
	}

	fmt.Printf("\ntotal: FAC2 %.2f s, AWF %.2f s (%.1f%% faster)\n",
		totalFAC2, totalAWF, (totalFAC2-totalAWF)/totalFAC2*100)
	fmt.Println("\nAWF lags one step behind the perturbation (it schedules step k with")
	fmt.Println("step k-1's measurements) and then routes work away from the slow PE;")
	fmt.Println("FAC2 re-pays the imbalance every step.")
}
