// Client SDK: run the same campaign through the unified Runner API —
// once in-process (campaign.LocalRunner) and once over HTTP against a
// dlsimd service (client.Client) — and verify the aggregates match
// bit for bit.
//
//	go run ./examples/client [-server URL] [-runs N]
//
// Without -server the example starts a dlsimd-equivalent service on an
// ephemeral localhost port, so it is runnable standalone; point -server
// at a real daemon (dlsimd -addr :8080) to exercise it instead. Only
// the public campaign and client packages are used for the interaction
// — everything after the server URL is exactly what an external
// consumer of the SDK writes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"

	"repro/campaign"
	"repro/client"
	"repro/internal/jobs"
	"repro/internal/service"
)

func main() {
	log.SetFlags(0)
	server := flag.String("server", "", "dlsimd base URL (default: start an in-process service)")
	runs := flag.Int("runs", 50, "replications per grid cell")
	flag.Parse()
	ctx := context.Background()

	// One cell of the paper's Figure 6 setup as a declarative campaign:
	// plain data, hashable, executable by any Runner.
	spec := campaign.Spec{
		Techniques:   []string{"FAC2", "GSS", "BOLD"},
		Ns:           []int64{8192},
		Ps:           []int{64},
		Workload:     campaign.Workload{Kind: "exponential", P1: 1},
		H:            0.5,
		Replications: *runs,
		Seed:         42,
	}

	// 1. Locally, through the in-process engine.
	local := campaign.NewLocal(campaign.LocalConfig{})
	defer local.Close()
	localRes, err := campaign.Run(ctx, local, spec)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Remotely, through the typed /v1 HTTP client.
	base := *server
	if base == "" {
		srv, stop := inProcessService()
		defer stop()
		base = srv
		log.Printf("no -server given; started an in-process dlsimd at %s", base)
	}
	remote, err := client.New(base)
	if err != nil {
		log.Fatal(err)
	}
	desc, err := remote.Describe(ctx)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("connected to %s (%s, %d techniques, backends %v)",
		base, desc.Service, len(desc.Techniques), desc.Backends)

	job, err := remote.Submit(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("submitted job %s (campaign %.12s, deduped=%v)", job.ID, job.Hash, job.Deduped)
	snap, err := remote.Wait(ctx, job.ID)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("job %s: %s, %d/%d runs", snap.ID, snap.State, snap.Completed, snap.Total)

	// Client-side aggregation over the streamed per-run events is the
	// same deterministic fold the server runs, so the numbers match the
	// local execution exactly.
	agg, err := spec.NewAggregator(false)
	if err != nil {
		log.Fatal(err)
	}
	if err := remote.Stream(ctx, job.ID, agg); err != nil {
		log.Fatal(err)
	}
	remoteRes := agg.Result()

	fmt.Printf("\n%-6s  %14s  %14s  %s\n", "tech", "local wasted", "remote wasted", "bit-identical")
	for i, a := range localRes.Aggregates {
		r := remoteRes.Aggregates[i]
		fmt.Printf("%-6s  %14.6g  %14.6g  %v\n",
			a.Spec.Technique, a.Wasted.Mean, r.Wasted.Mean, a.Wasted == r.Wasted)
	}
}

// inProcessService starts a dlsimd-equivalent HTTP service on an
// ephemeral port (external consumers run the dlsimd binary instead —
// this is only so the example works standalone).
func inProcessService() (url string, stop func()) {
	mgr := jobs.NewManager(jobs.Config{})
	srv := httptest.NewServer(service.New(mgr).Handler())
	return srv.URL, func() {
		srv.Close()
		mgr.Close()
	}
}
