// Heterogeneous-system example: weighted factoring (WF) was developed
// for "load-sharing in heterogeneous systems" (paper §II, [6]). This
// example runs a loop on PEs of unequal speed and compares:
//
//   - FAC, which is blind to the speed differences,
//   - WF with oracle weights (the true relative speeds),
//   - AWF-B, which discovers the weights online from measured rates.
//
// go run ./examples/heterogeneous [-n tasks]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	n := flag.Int64("n", 100000, "number of tasks")
	flag.Parse()

	// A small heterogeneous cluster: two fast nodes, one medium, one slow
	// (relative speeds 4:4:2:1).
	speeds := []float64{4, 4, 2, 1}
	p := len(speeds)
	var speedSum float64
	for _, s := range speeds {
		speedSum += s
	}
	weights := make([]float64, p)
	for i, s := range speeds {
		weights[i] = s * float64(p) / speedSum // oracle weights, Σ = p
	}

	work := workload.NewConstant(0.001)
	seq := workload.Total(work, *n)
	// Best possible makespan: all speed units busy continuously.
	ideal := seq / speedSum
	fmt.Printf("%d tasks of 1 ms on PEs with speeds %v\n", *n, speeds)
	fmt.Printf("sequential on a speed-1 PE: %.1f s; ideal parallel: %.2f s\n\n", seq, ideal)

	run := func(label string, s sched.Scheduler) {
		res, err := sim.Run(sim.Config{
			P:      p,
			Sched:  s,
			Work:   work,
			Speeds: speeds,
			RNG:    rng.New(1),
		})
		if err != nil {
			log.Fatal(err)
		}
		eff := ideal / res.Makespan * 100
		fmt.Printf("  %-22s makespan %7.3f s  efficiency %5.1f%%  CoV(finish) %.4f\n",
			label, res.Makespan, eff, metrics.CoV(res.Finish))
	}

	fac, err := sched.New("FAC", sched.Params{N: *n, P: p, Mu: work.Mean(), Sigma: work.Std()})
	if err != nil {
		log.Fatal(err)
	}
	run("FAC (speed-blind)", fac)

	wf, err := sched.New("WF", sched.Params{
		N: *n, P: p, Mu: work.Mean(), Sigma: work.Std(), Weights: weights,
	})
	if err != nil {
		log.Fatal(err)
	}
	run("WF (oracle weights)", wf)

	awfb, err := sched.NewAWFB(sched.Params{N: *n, P: p})
	if err != nil {
		log.Fatal(err)
	}
	run("AWF-B (learns online)", awfb)
	learned := awfb.UpdatedWeights()
	fmt.Printf("\nAWF-B's measured weights: %.2f (oracle: %.2f)\n", learned, weights)
	fmt.Println("\nFAC deals out equal chunks per batch, so the slow PE drags every")
	fmt.Println("batch barrier; WF sizes chunks by speed up front, and AWF-B converges")
	fmt.Println("to nearly the same weights from runtime measurements alone.")
}
