// Monte Carlo example: DLS was applied early to Monte Carlo simulations
// (paper §I, [5]). Particle histories have i.i.d. random lifetimes, which
// is exactly the BOLD publication's exponential workload — and this
// example runs it through the full SimGrid-MSG-style stack: a platform
// built (and round-tripped through SimGrid-flavoured XML) with a master
// and workers exchanging real messages, per paper Figure 1.
//
//	go run ./examples/montecarlo [-histories N] [-p PEs]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"

	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	n := flag.Int64("histories", 4096, "number of particle histories (tasks)")
	p := flag.Int("p", 16, "number of worker PEs")
	seed := flag.Uint64("seed", 2017, "random seed")
	flag.Parse()

	// Build the cluster, write it to SimGrid-flavoured XML, and read it
	// back — demonstrating that the simulation consumes the same kind of
	// platform description the paper's SimGrid experiments did.
	bw, lat := platform.FreeNetwork()
	built, err := platform.Cluster("mc", *p, 1.0, bw, lat)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := platform.WritePlatform(&buf, built); err != nil {
		log.Fatal(err)
	}
	pl, err := platform.ParsePlatform(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %d hosts (XML round-tripped, %d bytes)\n\n", pl.NumHosts(), buf.Len())

	workers := make([]string, *p)
	for i := range workers {
		workers[i] = fmt.Sprintf("mc-%d", i+1)
	}

	// Particle histories: exponential lifetime with mean 1 s, h = 0.5 s
	// of bookkeeping per work assignment — the Hagerup setup.
	const h = 0.5
	fmt.Printf("%d particle histories on %d PEs, exp(mu=1s), h=%.1fs\n\n", *n, *p, h)
	fmt.Printf("  %-6s  %12s  %12s  %10s\n", "tech", "makespan [s]", "wasted [s]", "sched ops")
	for _, tech := range []string{"STAT", "SS", "GSS", "FAC2", "BOLD"} {
		s, err := sched.New(tech, sched.Params{N: *n, P: *p, H: h, Mu: 1, Sigma: 1})
		if err != nil {
			log.Fatal(err)
		}
		res, err := msg.RunApp(msg.NewEngine(pl), msg.AppConfig{
			MasterHost:     "mc-0",
			WorkerHosts:    workers,
			Sched:          s,
			Work:           workload.NewExponential(1),
			RNG:            rng.FromState(rng.Mix64(*seed)),
			ReferenceSpeed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		wasted := metrics.AverageWasted(res.Makespan, res.Compute, res.SchedOps, h)
		fmt.Printf("  %-6s  %12.2f  %12.2f  %10d\n", tech, res.Makespan, wasted, res.SchedOps)
	}
	fmt.Println("\nSS balances the random lifetimes perfectly but pays h per history;")
	fmt.Println("BOLD and FAC2 get near-SS balance at a fraction of the operations.")
}
