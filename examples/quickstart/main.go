// Quickstart: compare the paper's eight verified DLS techniques on one
// cell of the Hagerup experiment using the public facade.
//
//	go run ./examples/quickstart [-n tasks] [-p PEs] [-runs N]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	log.SetFlags(0)
	n := flag.Int64("n", 8192, "number of tasks")
	p := flag.Int("p", 64, "number of PEs")
	runs := flag.Int("runs", 30, "runs to average over")
	flag.Parse()

	// The Hagerup setup: exponential task times with mean 1 s, scheduling
	// overhead 0.5 s per operation (paper §III-B).
	techniques := []string{"STAT", "SS", "FSC", "GSS", "TSS", "FAC", "FAC2", "BOLD"}

	fmt.Printf("average wasted time, %d tasks on %d PEs, exp(mu=1s), h=0.5s, %d runs\n\n",
		*n, *p, *runs)

	type row struct {
		tech   string
		wasted float64
	}
	var rows []row
	for _, tech := range techniques {
		w, err := repro.MeanWastedTime(tech, *n, *p, *runs,
			repro.WithExponential(1), repro.WithOverhead(0.5), repro.WithSeed(7))
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{tech, w})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].wasted < rows[j].wasted })

	fmt.Printf("  %-6s  %12s\n", "rank", "wasted [s]")
	for i, r := range rows {
		fmt.Printf("  %d. %-6s %10.3f\n", i+1, r.tech, r.wasted)
	}

	best := rows[0]
	fmt.Printf("\n%s wins: dynamic, variance-aware chunking beats both naive\n", best.tech)
	fmt.Println("approaches (STAT: imbalance; SS: per-task overhead), reproducing the")
	fmt.Println("qualitative result of the paper's Figures 5-8.")

	// A single detailed run, to show the richer Simulate API.
	res, err := repro.Simulate(best.tech, *n, *p,
		repro.WithExponential(1), repro.WithOverhead(0.5), repro.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\none %s run in detail: makespan %.2f s, %d scheduling ops, speedup %.1f of ideal %d\n",
		best.tech, res.Makespan, res.SchedOps, res.Speedup, *p)
}
