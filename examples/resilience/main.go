// Resilience example: the paper's earlier-work context investigated "the
// resilience of dynamic loop scheduling in heterogeneous computing
// systems" ([3]). This example kills workers mid-loop and shows the
// fault-tolerant master (internal/msg.RunResilientApp) detecting the
// silence, requeueing the lost chunks and finishing the loop on the
// survivors — and how the scheduling technique determines the cost of a
// failure: STAT loses a whole n/p-task chunk, FAC2 only a small one.
//
//	go run ./examples/resilience [-n tasks] [-p PEs]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	n := flag.Int64("n", 4000, "number of tasks")
	p := flag.Int("p", 8, "number of worker PEs")
	flag.Parse()

	bw, lat := platform.FreeNetwork()
	newEngine := func() (*msg.Engine, string, []string) {
		pl, err := platform.Cluster("r", *p, 1.0, bw, lat)
		if err != nil {
			log.Fatal(err)
		}
		workers := make([]string, *p)
		for i := range workers {
			workers[i] = fmt.Sprintf("r-%d", i+1)
		}
		return msg.NewEngine(pl), "r-0", workers
	}

	const taskTime = 0.01
	run := func(tech string, failures []msg.Failure) *msg.ResilientResult {
		s, err := sched.New(tech, sched.Params{N: *n, P: *p, Mu: taskTime, Sigma: 0})
		if err != nil {
			log.Fatal(err)
		}
		e, master, workers := newEngine()
		res, err := msg.RunResilientApp(e, msg.ResilientConfig{
			AppConfig: msg.AppConfig{
				MasterHost:     master,
				WorkerHosts:    workers,
				Sched:          s,
				Work:           workload.NewConstant(taskTime),
				ReferenceSpeed: 1,
			},
			Failures: failures,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("%d tasks of %.0f ms on %d PEs; worker 2 crashes during its 1st chunk,\n",
		*n, taskTime*1000, *p)
	fmt.Printf("worker 5 during its 3rd\n\n")
	failures := []msg.Failure{{Worker: 2, AfterChunks: 1}, {Worker: 5, AfterChunks: 3}}

	fmt.Printf("  %-6s  %12s  %12s  %12s  %10s\n",
		"tech", "makespan [s]", "no-fail [s]", "reassigned", "penalty")
	for _, tech := range []string{"STAT", "GSS", "TSS", "FAC2", "SS"} {
		clean := run(tech, nil)
		faulty := run(tech, failures)
		if faulty.TasksCompleted != *n {
			log.Fatalf("%s: completed %d of %d", tech, faulty.TasksCompleted, *n)
		}
		penalty := (faulty.Makespan - clean.Makespan) / clean.Makespan * 100
		fmt.Printf("  %-6s  %12.2f  %12.2f  %12d  %9.1f%%\n",
			tech, faulty.Makespan, clean.Makespan, faulty.TasksReassigned, penalty)
	}

	fmt.Println("\nA failure costs (chunk size at death) × (re-execution) plus detection")
	fmt.Println("latency. STAT forfeits a whole n/p chunk; the decreasing-chunk")
	fmt.Println("techniques mostly lose small late chunks, and SS loses single tasks.")
}
